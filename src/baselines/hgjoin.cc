#include "baselines/hgjoin.h"

#include <algorithm>
#include <functional>
#include <map>

#include "baselines/match_graph_util.h"
#include "common/logging.h"
#include "common/timer.h"

namespace gtpq {

namespace {

// One query edge's match pairs (parent candidate, child candidate).
struct EdgeRelation {
  QNodeId parent, child;
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

std::vector<NodeId> Candidates(const DataGraph& g, const Gtpq& q,
                               QNodeId u, EngineStats* stats) {
  std::vector<NodeId> out;
  auto label = q.node(u).attr_pred.RequiredLabel(g.label_attr());
  if (label.has_value() && q.node(u).attr_pred.atoms().size() == 1) {
    auto hits = g.NodesWithLabel(*label);
    out.assign(hits.begin(), hits.end());
  } else {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (q.node(u).attr_pred.Matches(g, v)) out.push_back(v);
    }
  }
  stats->input_nodes += out.size();
  return out;
}

// AD pairs via interval stabbing: child candidates sorted by post
// number; every interval of the parent covers a contiguous post range.
void JoinEdge(const DataGraph& g, const IntervalIndex& idx,
              const Gtpq& q, QNodeId child,
              const std::vector<NodeId>& pcand,
              const std::vector<NodeId>& ccand, EdgeRelation* rel,
              EngineStats* stats) {
  rel->parent = q.node(child).parent;
  rel->child = child;
  if (q.node(child).incoming == EdgeType::kChild) {
    for (NodeId v : pcand) {
      auto out = g.OutNeighbors(v);
      for (NodeId w : ccand) {
        if (std::binary_search(out.begin(), out.end(), w)) {
          rel->pairs.emplace_back(v, w);
        }
      }
    }
  } else {
    std::vector<NodeId> by_post(ccand);
    std::sort(by_post.begin(), by_post.end(),
              [&idx](NodeId a, NodeId b) {
                return idx.PostOf(a) < idx.PostOf(b);
              });
    for (NodeId v : pcand) {
      for (const auto& interval : idx.IntervalsOf(v)) {
        ++idx.stats().elements_looked_up;
        auto lo = std::lower_bound(
            by_post.begin(), by_post.end(), interval.low,
            [&idx](NodeId a, uint32_t p) { return idx.PostOf(a) < p; });
        for (auto it = lo;
             it != by_post.end() && idx.PostOf(*it) <= interval.post;
             ++it) {
          if (*it != v) rel->pairs.emplace_back(v, *it);
        }
      }
    }
  }
  stats->intermediate_size += 2 * rel->pairs.size();
}

// Connected join orders over the query edges (each next edge shares a
// query node with the already-joined set).
void EnumeratePlans(size_t num_edges, size_t cap,
                    std::vector<std::vector<size_t>>* plans,
                    const std::vector<EdgeRelation>& rels) {
  std::vector<size_t> current;
  std::vector<char> used(num_edges, 0);
  std::function<void()> recurse = [&]() {
    if (plans->size() >= cap) return;
    if (current.size() == num_edges) {
      plans->push_back(current);
      return;
    }
    for (size_t e = 0; e < num_edges; ++e) {
      if (used[e]) continue;
      bool connected = current.empty();
      for (size_t chosen : current) {
        if (rels[e].parent == rels[chosen].parent ||
            rels[e].parent == rels[chosen].child ||
            rels[e].child == rels[chosen].parent ||
            rels[e].child == rels[chosen].child) {
          connected = true;
          break;
        }
      }
      if (!connected) continue;
      used[e] = 1;
      current.push_back(e);
      recurse();
      current.pop_back();
      used[e] = 0;
    }
  };
  recurse();
}

// Folds a plan with binary hash joins; returns full-width tuples.
std::vector<std::vector<NodeId>> RunPlan(
    const Gtpq& q, const std::vector<EdgeRelation>& rels,
    const std::vector<size_t>& plan, EngineStats* stats) {
  std::vector<char> bound(q.NumNodes(), 0);
  std::vector<std::vector<NodeId>> acc;
  for (size_t step = 0; step < plan.size(); ++step) {
    const EdgeRelation& rel = rels[plan[step]];
    if (step == 0) {
      acc.reserve(rel.pairs.size());
      for (const auto& [v, w] : rel.pairs) {
        std::vector<NodeId> t(q.NumNodes(), kInvalidNode);
        t[rel.parent] = v;
        t[rel.child] = w;
        acc.push_back(std::move(t));
      }
      bound[rel.parent] = bound[rel.child] = 1;
      stats->intermediate_size += 2 * acc.size();
      continue;
    }
    const bool parent_bound = bound[rel.parent];
    const bool child_bound = bound[rel.child];
    GTPQ_CHECK(parent_bound || child_bound) << "disconnected plan step";
    // Hash the relation on its bound side(s).
    std::map<std::pair<NodeId, NodeId>, std::vector<size_t>> index;
    for (size_t i = 0; i < rel.pairs.size(); ++i) {
      NodeId kp = parent_bound ? rel.pairs[i].first : kInvalidNode;
      NodeId kc = child_bound ? rel.pairs[i].second : kInvalidNode;
      index[{kp, kc}].push_back(i);
    }
    std::vector<std::vector<NodeId>> next;
    for (const auto& t : acc) {
      NodeId kp = parent_bound ? t[rel.parent] : kInvalidNode;
      NodeId kc = child_bound ? t[rel.child] : kInvalidNode;
      auto it = index.find({kp, kc});
      if (it == index.end()) continue;
      for (size_t i : it->second) {
        ++stats->join_ops;
        std::vector<NodeId> merged = t;
        merged[rel.parent] = rel.pairs[i].first;
        merged[rel.child] = rel.pairs[i].second;
        next.push_back(std::move(merged));
      }
    }
    acc = std::move(next);
    bound[rel.parent] = bound[rel.child] = 1;
    stats->intermediate_size += acc.size() * 2;
    if (acc.empty()) break;
  }
  return acc;
}

QueryResult ProjectTuples(const Gtpq& q,
                          const std::vector<std::vector<NodeId>>& tuples) {
  QueryResult result;
  result.output_nodes = q.outputs();
  std::sort(result.output_nodes.begin(), result.output_nodes.end());
  for (const auto& t : tuples) {
    ResultTuple row;
    row.reserve(result.output_nodes.size());
    for (QNodeId o : result.output_nodes) row.push_back(t[o]);
    result.tuples.push_back(std::move(row));
  }
  result.Normalize();
  return result;
}

}  // namespace

QueryResult EvaluateHgJoin(const DataGraph& g, const IntervalIndex& idx,
                           const Gtpq& q, const HgJoinOptions& options,
                           EngineStats* stats, HgJoinReport* report) {
  GTPQ_CHECK(q.IsConjunctive()) << "HGJoin handles conjunctive queries";
  idx.stats().Reset();
  QueryResult empty;
  empty.output_nodes = q.outputs();
  std::sort(empty.output_nodes.begin(), empty.output_nodes.end());

  std::vector<std::vector<NodeId>> cand(q.NumNodes());
  for (QNodeId u = 0; u < q.NumNodes(); ++u) {
    cand[u] = Candidates(g, q, u, stats);
    if (cand[u].empty()) return empty;
  }

  // Single-node query: the candidates are the answer.
  if (q.NumNodes() == 1) {
    std::vector<std::vector<NodeId>> tuples;
    for (NodeId v : cand[0]) tuples.push_back({v});
    return ProjectTuples(q, tuples);
  }

  std::vector<EdgeRelation> rels;
  rels.reserve(q.NumNodes() - 1);
  for (QNodeId c = 1; c < q.NumNodes(); ++c) {
    EdgeRelation rel;
    JoinEdge(g, idx, q, c, cand[q.node(c).parent], cand[c], &rel, stats);
    // #index plumbed from the oracle's own counters, so the metric
    // stays backend-accurate.
    stats->index_lookups = idx.stats().elements_looked_up;
    if (rel.pairs.empty()) return empty;
    rels.push_back(std::move(rel));
  }

  if (options.graph_intermediates) {
    // HGJoin*: pair lists become a match graph, reduced then traversed.
    ConjMatchGraph mg;
    mg.cand.resize(q.NumNodes());
    mg.child_lists.resize(q.NumNodes());
    for (QNodeId u = 0; u < q.NumNodes(); ++u) mg.cand[u] = cand[u];
    for (const auto& rel : rels) {
      std::map<NodeId, uint32_t> parent_index, child_index;
      for (uint32_t i = 0; i < mg.cand[rel.parent].size(); ++i) {
        parent_index[mg.cand[rel.parent][i]] = i;
      }
      for (uint32_t i = 0; i < mg.cand[rel.child].size(); ++i) {
        child_index[mg.cand[rel.child][i]] = i;
      }
      mg.child_lists[rel.child].assign(mg.cand[rel.parent].size(), {});
      for (const auto& [v, w] : rel.pairs) {
        mg.child_lists[rel.child][parent_index[v]].push_back(
            child_index[w]);
      }
    }
    if (!ReduceConjMatchGraph(q, &mg)) return empty;
    return EnumerateConjMatchGraph(q, mg, stats);
  }

  // HGJoin+: try all (capped) connected plans, report the fastest.
  std::vector<std::vector<size_t>> plans;
  EnumeratePlans(rels.size(), options.max_plans, &plans, rels);
  GTPQ_CHECK(!plans.empty());
  QueryResult result;
  double best_ms = -1;
  for (const auto& plan : plans) {
    EngineStats scratch;
    Timer t;
    auto tuples = RunPlan(q, rels, plan, &scratch);
    double ms = t.ElapsedMillis();
    if (best_ms < 0 || ms < best_ms) {
      best_ms = ms;
      result = ProjectTuples(q, tuples);
      stats->join_ops += scratch.join_ops;
      stats->intermediate_size += scratch.intermediate_size;
    }
  }
  if (report != nullptr) {
    report->best_plan_ms = best_ms;
    report->plans_tried = plans.size();
  }
  return result;
}

}  // namespace gtpq
