#include "baselines/twigstackd.h"

#include <algorithm>

#include "baselines/match_graph_util.h"
#include "common/logging.h"
#include "graph/algorithms.h"

namespace gtpq {

std::vector<std::vector<NodeId>> TwigStackDPreFilter(const DataGraph& g,
                                                     const Gtpq& q,
                                                     EngineStats* stats) {
  GTPQ_CHECK(q.NumNodes() <= 64) << "query wider than the 64-bit masks";
  const size_t n = g.NumNodes();
  auto order = TopologicalSort(g.graph());
  GTPQ_CHECK(order.size() == n) << "TwigStackD requires a DAG";

  // Attribute matching masks.
  std::vector<uint64_t> sim(n, 0);
  for (QNodeId u = 0; u < q.NumNodes(); ++u) {
    auto label = q.node(u).attr_pred.RequiredLabel(g.label_attr());
    if (label.has_value() && q.node(u).attr_pred.atoms().size() == 1) {
      for (NodeId v : g.NodesWithLabel(*label)) sim[v] |= uint64_t{1} << u;
    } else {
      for (NodeId v = 0; v < n; ++v) {
        if (q.node(u).attr_pred.Matches(g, v)) sim[v] |= uint64_t{1} << u;
      }
    }
  }

  // Traversal 1 (bottom-up): down[v] bit u <=> the sub-twig rooted at u
  // matches below v.
  std::vector<uint64_t> down(n, 0), desc_acc(n, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    ++stats->input_nodes;
    uint64_t child_or = 0, desc_or = 0;
    for (NodeId w : g.OutNeighbors(v)) {
      child_or |= down[w];
      desc_or |= desc_acc[w] | down[w];
    }
    desc_acc[v] = desc_or;
    for (QNodeId u : q.BottomUpOrder()) {
      if (!(sim[v] & (uint64_t{1} << u))) continue;
      bool ok = true;
      for (QNodeId c : q.node(u).children) {
        const uint64_t bit = uint64_t{1} << c;
        const uint64_t have =
            q.node(c).incoming == EdgeType::kChild ? child_or : desc_or;
        if (!(have & bit)) {
          ok = false;
          break;
        }
      }
      if (ok) down[v] |= uint64_t{1} << u;
    }
  }

  // Traversal 2 (top-down): keep candidates whose query parent is
  // matched by a proper ancestor (resp. direct parent).
  std::vector<uint64_t> up(n, 0), anc_acc(n, 0);
  for (NodeId v : order) {
    ++stats->input_nodes;
    uint64_t parent_or = 0, anc_or = 0;
    for (NodeId w : g.InNeighbors(v)) {
      parent_or |= up[w];
      anc_or |= anc_acc[w] | up[w];
    }
    anc_acc[v] = anc_or;
    for (QNodeId u : q.TopDownOrder()) {
      if (!(down[v] & (uint64_t{1} << u))) continue;
      if (u == q.root()) {
        up[v] |= uint64_t{1} << u;
        continue;
      }
      const uint64_t pbit = uint64_t{1} << q.node(u).parent;
      const uint64_t have =
          q.node(u).incoming == EdgeType::kChild ? parent_or : anc_or;
      if (have & pbit) up[v] |= uint64_t{1} << u;
    }
  }

  std::vector<std::vector<NodeId>> mat(q.NumNodes());
  for (NodeId v = 0; v < n; ++v) {
    uint64_t bits = up[v];
    while (bits) {
      int u = __builtin_ctzll(bits);
      bits &= bits - 1;
      mat[static_cast<size_t>(u)].push_back(v);
    }
  }
  return mat;
}

QueryResult EvaluateTwigStackD(const DataGraph& g, const Sspi& sspi,
                               const Gtpq& q, EngineStats* stats) {
  GTPQ_CHECK(q.IsConjunctive())
      << "TwigStackD handles conjunctive twigs only";
  auto mat = TwigStackDPreFilter(g, q, stats);

  QueryResult empty;
  empty.output_nodes = q.outputs();
  std::sort(empty.output_nodes.begin(), empty.output_nodes.end());
  for (QNodeId u = 0; u < q.NumNodes(); ++u) {
    if (mat[u].empty()) return empty;
  }

  // Pool stage: connect candidates with pairwise SSPI probes.
  sspi.stats().Reset();
  ConjMatchGraph mg;
  mg.cand = mat;
  mg.child_lists.resize(q.NumNodes());
  for (QNodeId c = 1; c < q.NumNodes(); ++c) {
    const QNodeId p = q.node(c).parent;
    mg.child_lists[c].resize(mat[p].size());
    const bool pc = q.node(c).incoming == EdgeType::kChild;
    for (uint32_t pi = 0; pi < mat[p].size(); ++pi) {
      for (uint32_t wi = 0; wi < mat[c].size(); ++wi) {
        const bool linked = pc ? g.HasEdge(mat[p][pi], mat[c][wi])
                               : sspi.Reaches(mat[p][pi], mat[c][wi]);
        if (linked) mg.child_lists[c][pi].push_back(wi);
      }
    }
  }
  stats->index_lookups += sspi.stats().elements_looked_up;
  stats->intermediate_size += 2 * (mg.TotalNodes() + mg.TotalEdges());

  if (!ReduceConjMatchGraph(q, &mg)) return empty;
  return EnumerateConjMatchGraph(q, mg, stats);
}

}  // namespace gtpq
