#include "baselines/twig2stack.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/logging.h"

namespace gtpq {

namespace {

// Tree parents recovered from the region encoding's spanning forest.
std::vector<NodeId> TreeParents(const DataGraph& g,
                                const RegionEncoding& enc) {
  const size_t n = g.NumNodes();
  std::vector<NodeId> parent(n, kInvalidNode);
  // The nearest preceding node in doc order whose region contains v.
  std::vector<NodeId> stack;
  for (NodeId v : enc.doc_order) {
    while (!stack.empty() && enc.end[stack.back()] < enc.start[v]) {
      stack.pop_back();
    }
    if (!stack.empty() && enc.IsTreeAncestor(stack.back(), v)) {
      parent[v] = stack.back();
    }
    stack.push_back(v);
  }
  return parent;
}

}  // namespace

QueryResult EvaluateTwig2Stack(const DataGraph& g,
                               const RegionEncoding& enc, const Gtpq& q,
                               EngineStats* stats) {
  GTPQ_CHECK(q.IsConjunctive())
      << "Twig2Stack handles conjunctive twigs only";
  GTPQ_CHECK(q.NumNodes() <= 64) << "query wider than the 64-bit masks";
  const size_t n = g.NumNodes();
  auto parent = TreeParents(g, enc);
  std::vector<std::vector<NodeId>> tree_children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (parent[v] != kInvalidNode) tree_children[parent[v]].push_back(v);
  }

  // Single bottom-up pass (reverse document order): D-bit u of v says
  // the subtree rooted at v matches the sub-twig rooted at u.
  std::vector<uint64_t> dmask(n, 0);
  // Per query node: the minimum start among D-matches seen so far; as
  // we sweep in reverse document order, a candidate subtree contains a
  // match iff that minimum lies before the subtree's end.
  std::vector<uint32_t> min_start(q.NumNodes(), UINT32_MAX);
  // Per query node: tree parents that have a direct D-matching child.
  std::vector<std::unordered_set<NodeId>> pc_parents(q.NumNodes());
  std::vector<std::vector<NodeId>> matches(q.NumNodes());

  for (auto it = enc.doc_order.rbegin(); it != enc.doc_order.rend();
       ++it) {
    const NodeId v = *it;
    ++stats->input_nodes;
    for (QNodeId u : q.BottomUpOrder()) {
      if (!q.node(u).attr_pred.Matches(g, v)) continue;
      bool ok = true;
      for (QNodeId c : q.node(u).children) {
        if (q.node(c).incoming == EdgeType::kChild) {
          if (!pc_parents[c].count(v)) {
            ok = false;
            break;
          }
        } else {
          if (min_start[c] >= enc.end[v]) {  // no match inside subtree
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;
      dmask[v] |= uint64_t{1} << u;
      matches[u].push_back(v);
      min_start[u] = std::min(min_start[u], enc.start[v]);
      if (parent[v] != kInvalidNode) pc_parents[u].insert(parent[v]);
      ++stats->intermediate_size;  // match-hierarchy entry
    }
  }

  // Matches were found in reverse document order; flip to ascending
  // start for range scans.
  for (auto& m : matches) std::reverse(m.begin(), m.end());

  // Enumerate from the match hierarchy.
  QueryResult result;
  result.output_nodes = q.outputs();
  std::sort(result.output_nodes.begin(), result.output_nodes.end());
  std::vector<size_t> slot_of(q.NumNodes(), SIZE_MAX);
  for (size_t i = 0; i < result.output_nodes.size(); ++i) {
    slot_of[result.output_nodes[i]] = i;
  }
  auto order = q.TopDownOrder();
  std::vector<NodeId> image(q.NumNodes(), kInvalidNode);
  ResultTuple current(result.output_nodes.size(), kInvalidNode);

  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == order.size()) {
      result.tuples.push_back(current);
      return;
    }
    const QNodeId u = order[depth];
    auto emit = [&](NodeId v) {
      image[u] = v;
      if (slot_of[u] != SIZE_MAX) current[slot_of[u]] = v;
      recurse(depth + 1);
    };
    if (u == q.root()) {
      for (NodeId v : matches[u]) emit(v);
      return;
    }
    const NodeId pv = image[q.node(u).parent];
    if (q.node(u).incoming == EdgeType::kChild) {
      for (NodeId w : tree_children[pv]) {
        if (dmask[w] & (uint64_t{1} << u)) emit(w);
      }
    } else {
      // Matches of u with start inside pv's region.
      const auto& m = matches[u];
      auto lo = std::lower_bound(m.begin(), m.end(), enc.start[pv] + 1,
                                 [&enc](NodeId a, uint32_t s) {
                                   return enc.start[a] < s;
                                 });
      for (auto mit = lo; mit != m.end(); ++mit) {
        if (enc.start[*mit] >= enc.end[pv]) break;
        emit(*mit);
      }
    }
  };
  recurse(0);
  result.Normalize();
  return result;
}

}  // namespace gtpq
