#ifndef GTPQ_BASELINES_DECOMPOSE_H_
#define GTPQ_BASELINES_DECOMPOSE_H_

#include <functional>

#include "common/status.h"
#include "core/eval_types.h"
#include "query/gtpq.h"

namespace gtpq {

/// Conjunctive evaluation callback. The queries handed over are
/// conjunctive GTPQs whose outputs are all backbone nodes of the
/// original query (so set operations on answers line up).
using ConjunctiveEvaluator = std::function<QueryResult(const Gtpq&)>;

/// Decompose-and-merge evaluation of a general GTPQ on top of a
/// conjunctive-only engine — the strategy the paper ascribes to the
/// baselines in Exp-2 (Appendix C.2): structural predicates are
/// expanded to DNF (worst-case exponentially many conjunctive TPQs),
/// disjuncts are evaluated separately and united, and negated branches
/// are handled by evaluating the positive query with the branch forced
/// and subtracting (difference on backbone tuples).
///
/// Supported fragment: arbitrary conjunction/disjunction; negation over
/// branches whose subtrees are themselves negation-free. Nested
/// negation under negation returns kUnimplemented.
Result<QueryResult> EvaluateByDecomposition(const Gtpq& q,
                                            const ConjunctiveEvaluator& eval,
                                            EngineStats* stats);

/// Exposes the number of conjunctive queries the decomposition of `q`
/// requires (for the harness to report).
Result<size_t> CountDecomposedQueries(const Gtpq& q);

}  // namespace gtpq

#endif  // GTPQ_BASELINES_DECOMPOSE_H_
