#include "workload/xmark_queries.h"

#include <algorithm>

#include "common/logging.h"
#include "query/query_parser.h"
#include "workload/xmark.h"

namespace gtpq {
namespace workload {

namespace {

std::string L(int64_t label) { return std::to_string(label); }

// The Fig 11 structural skeleton: name parent edge label.
struct SkeletonNode {
  const char* name;
  const char* parent;
  const char* edge;
  int64_t label;
};

std::vector<SkeletonNode> Fig11Skeleton(int person_group, int item_group,
                                        int person2_group) {
  return {
      {"open_auction", "root", "", kOpenAuction},
      {"bidder", "open_auction", "pc", kBidder},
      {"person_ref", "bidder", "pc", kPersonRef},
      {"person", "person_ref", "pc", kPersonGroupBase + person_group},
      {"education", "person", "ad", kEducation},
      {"address", "person", "pc", kAddress},
      {"city", "address", "pc", kCity},
      {"item_ref", "open_auction", "pc", kItemRef},
      {"item", "item_ref", "pc", kItemGroupBase + item_group},
      {"location", "item", "pc", kLocation},
      {"mailbox", "item", "pc", kMailbox},
      {"mail", "mailbox", "pc", kMail},
      {"seller", "open_auction", "pc", kSeller},
      {"person2", "seller", "pc", kPersonGroupBase + person2_group},
      {"profile", "person2", "pc", kProfile},
  };
}

// Assembles query text from a skeleton + roles + fs lines + outputs.
Result<Gtpq> Assemble(const DataGraph& g,
                      const std::vector<SkeletonNode>& skeleton,
                      const std::set<std::string>& predicate_names,
                      const std::map<std::string, std::string>& fs,
                      const std::set<std::string>& outputs) {
  std::string text;
  for (const auto& n : skeleton) {
    const bool predicate = predicate_names.count(n.name) > 0;
    text += predicate ? "predicate " : "backbone ";
    text += n.name;
    if (std::string(n.parent) == "root") {
      text += " root";
    } else {
      text += std::string(" ") + n.parent + " " + n.edge;
    }
    if (!predicate &&
        (outputs.empty() || outputs.count(n.name) > 0)) {
      text += " *";
    }
    text += "\n";
    text += std::string("attr ") + n.name + " label=" + L(n.label) + "\n";
  }
  for (const auto& [node, formula] : fs) {
    text += "fs " + node + " = " + formula + "\n";
  }
  return ParseQuery(text, g.attr_names_ptr());
}

XmarkQuery MakeConjunctive(const DataGraph& g,
                           const std::vector<SkeletonNode>& skeleton,
                           std::vector<std::string> cross) {
  auto q = Assemble(g, skeleton, {}, {}, {});
  GTPQ_CHECK(q.ok()) << q.status().ToString();
  return XmarkQuery{q.TakeValue(), std::move(cross)};
}

}  // namespace

XmarkQuery BuildXmarkQ1(const DataGraph& g, int person_group) {
  std::vector<SkeletonNode> skeleton = {
      {"open_auction", "root", "", kOpenAuction},
      {"bidder", "open_auction", "pc", kBidder},
      {"person_ref", "bidder", "pc", kPersonRef},
      {"person", "person_ref", "pc", kPersonGroupBase + person_group},
      {"education", "person", "ad", kEducation},
      {"address", "person", "pc", kAddress},
      {"city", "address", "pc", kCity},
      {"current", "open_auction", "pc", kCurrent},
  };
  return MakeConjunctive(g, skeleton, {"person"});
}

XmarkQuery BuildXmarkQ2(const DataGraph& g, int person_group,
                        int item_group) {
  XmarkQuery q1 = BuildXmarkQ1(g, person_group);
  std::vector<SkeletonNode> skeleton = {
      {"open_auction", "root", "", kOpenAuction},
      {"bidder", "open_auction", "pc", kBidder},
      {"person_ref", "bidder", "pc", kPersonRef},
      {"person", "person_ref", "pc", kPersonGroupBase + person_group},
      {"education", "person", "ad", kEducation},
      {"address", "person", "pc", kAddress},
      {"city", "address", "pc", kCity},
      {"current", "open_auction", "pc", kCurrent},
      {"item_ref", "open_auction", "pc", kItemRef},
      {"item", "item_ref", "pc", kItemGroupBase + item_group},
      {"location", "item", "pc", kLocation},
  };
  return MakeConjunctive(g, skeleton, {"person", "item"});
}

XmarkQuery BuildXmarkQ3(const DataGraph& g, int person_group,
                        int item_group, int person2_group) {
  std::vector<SkeletonNode> skeleton = {
      {"open_auction", "root", "", kOpenAuction},
      {"bidder", "open_auction", "pc", kBidder},
      {"person_ref", "bidder", "pc", kPersonRef},
      {"person", "person_ref", "pc", kPersonGroupBase + person_group},
      {"education", "person", "ad", kEducation},
      {"address", "person", "pc", kAddress},
      {"city", "address", "pc", kCity},
      {"current", "open_auction", "pc", kCurrent},
      {"item_ref", "open_auction", "pc", kItemRef},
      {"item", "item_ref", "pc", kItemGroupBase + item_group},
      {"location", "item", "pc", kLocation},
      {"seller", "open_auction", "pc", kSeller},
      {"person2", "seller", "pc", kPersonGroupBase + person2_group},
      {"profile", "person2", "pc", kProfile},
  };
  return MakeConjunctive(g, skeleton, {"person", "item", "person2"});
}

Result<XmarkQuery> BuildFig11Query(
    const DataGraph& g, int person_group, int item_group,
    const std::map<std::string, std::string>& fs,
    const std::set<std::string>& outputs) {
  auto skeleton =
      Fig11Skeleton(person_group, item_group, (person_group + 1) % 10);
  // Nodes referenced in structural predicates become predicate nodes,
  // along with their whole subtrees (backbone nodes may not hang off
  // predicate parents).
  std::set<std::string> predicate_names;
  for (const auto& [node, formula] : fs) {
    std::string token;
    auto flush = [&]() {
      if (!token.empty() && token != node) predicate_names.insert(token);
      token.clear();
    };
    for (char c : formula) {
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        token.push_back(c);
      } else {
        flush();
      }
    }
    flush();
  }
  // Close under descendants.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& n : skeleton) {
      if (predicate_names.count(n.parent) &&
          !predicate_names.count(n.name)) {
        predicate_names.insert(n.name);
        grew = true;
      }
    }
  }
  auto q = Assemble(g, skeleton, predicate_names, fs, outputs);
  if (!q.ok()) return q.status();
  return XmarkQuery{q.TakeValue(), {"person", "item", "person2"}};
}

Result<XmarkQuery> BuildExp1Query(const DataGraph& g, int person_group,
                                  int item_group, int variant) {
  static const std::vector<std::set<std::string>> kOutputs = {
      /*Q4*/ {"open_auction"},
      /*Q5*/ {"open_auction", "bidder", "seller"},
      /*Q6*/ {"open_auction", "bidder", "seller", "city", "profile"},
      /*Q7*/ {"open_auction", "item", "location"},
      /*Q8*/ {},  // all nodes
  };
  if (variant < 4 || variant > 8) {
    return Status::InvalidArgument("Exp-1 variants are Q4..Q8");
  }
  return BuildFig11Query(g, person_group, item_group, {},
                         kOutputs[static_cast<size_t>(variant - 4)]);
}

Result<XmarkQuery> BuildExp2Query(const DataGraph& g, int person_group,
                                  int item_group,
                                  const std::string& name) {
  // item_ref stands in for the paper's `item` variable on
  // open_auction's predicate (the reference edge is where the branch
  // hangs); fs(item) applies to the item element as in Table 4.
  static const std::map<std::string,
                        std::map<std::string, std::string>>
      kSpecs = {
          {"DIS1", {{"open_auction", "bidder | seller"}}},
          {"DIS2",
           {{"open_auction", "bidder | seller"},
            {"item", "mailbox | location"}}},
          {"DIS3", {{"open_auction", "bidder | seller | item_ref"}}},
          {"NEG1", {{"person", "!education"}}},
          {"NEG2",
           {{"open_auction", "!bidder"}, {"person", "!education"}}},
          {"NEG3",
           {{"open_auction", "!bidder & !seller"},
            {"person", "!education"}}},
          {"DIS_NEG1",
           {{"open_auction", "!bidder | seller"},
            {"person", "!education"}}},
          {"DIS_NEG2",
           {{"open_auction",
             "(!bidder & seller) | (bidder & !seller)"}}},
          {"DIS_NEG3",
           {{"open_auction", "(!bidder & seller) | (bidder & !seller)"},
            {"person", "!education"}}},
          {"DIS_NEG4",
           {{"open_auction",
             "(!bidder & seller & item_ref) | "
             "(bidder & !seller & !item_ref)"},
            {"person", "!education"}}},
      };
  auto it = kSpecs.find(name);
  if (it == kSpecs.end()) {
    return Status::NotFound("unknown Exp-2 query " + name);
  }
  return BuildFig11Query(g, person_group, item_group, it->second, {});
}

std::vector<std::string> Exp2QueryNames() {
  return {"DIS1", "DIS2",     "DIS3",     "NEG1",     "NEG2",
          "NEG3", "DIS_NEG1", "DIS_NEG2", "DIS_NEG3", "DIS_NEG4"};
}

}  // namespace workload
}  // namespace gtpq
