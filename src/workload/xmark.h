#ifndef GTPQ_WORKLOAD_XMARK_H_
#define GTPQ_WORKLOAD_XMARK_H_

#include <cstdint>

#include "graph/data_graph.h"

namespace gtpq {
namespace workload {

/// Tag labels of the XMark-shaped synthetic graph. person and item
/// elements carry group labels instead (the paper randomly partitions
/// them into ten groups each, Section 5.1).
enum XmarkTag : int64_t {
  kSite = 1,
  kPeople,
  kName,
  kEmail,
  kAddress,
  kCity,
  kProfile,
  kEducation,
  kInterest,
  kItems,
  kLocation,
  kQuantity,
  kDescription,
  kMailbox,
  kMail,
  kOpenAuctions,
  kOpenAuction,
  kInitial,
  kCurrent,
  kBidder,
  kDate,
  kTime,
  kPersonRef,
  kItemRef,
  kSeller,
  kAnnotation,
  kClosedAuctions,
  kClosedAuction,
  kPrice,
  kBuyer,
};

/// Group labels: person group g in [0,10) has label kPersonGroupBase+g.
constexpr int64_t kPersonGroupBase = 100;
constexpr int64_t kItemGroupBase = 200;
constexpr int kNumGroups = 10;

struct XmarkOptions {
  /// The paper's scaling factor; scale 1 produces ~1.3M nodes /
  /// ~1.5M edges like Table 1. Fractional scales shrink linearly.
  double scale = 1.0;
  uint64_t seed = 2012;
};

/// Generates the XMark-shaped graph: a shallow element tree for
/// people / items / open and closed auctions, plus ID/IDREF cross edges
/// person_ref->person, item_ref->item, seller->person, buyer->person.
/// The spanning tree annotation is populated (for the tree-only
/// baselines); all IDREF sources live inside auction records, so
/// record-internal AD semantics agree between the spanning tree and the
/// full graph — the property the paper's decomposition relies on.
DataGraph GenerateXmark(const XmarkOptions& options);

/// Approximate node count at a given scale (for harness reporting).
size_t XmarkApproxNodes(double scale);

}  // namespace workload
}  // namespace gtpq

#endif  // GTPQ_WORKLOAD_XMARK_H_
