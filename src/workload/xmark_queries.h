#ifndef GTPQ_WORKLOAD_XMARK_QUERIES_H_
#define GTPQ_WORKLOAD_XMARK_QUERIES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/gtpq.h"

namespace gtpq {
namespace workload {

/// A built benchmark query plus the cross (IDREF) query nodes, which
/// the TwigStack/Twig2Stack decomposition wrapper splits at.
struct XmarkQuery {
  Gtpq query;
  std::vector<std::string> cross_node_names;
};

/// Fig 7 queries Q1/Q2/Q3: conjunctive TPQs with all nodes output, over
/// open_auction records joining persons (and items / second persons)
/// through IDREF edges. `person_group`/`item_group` pick the random
/// label instances the paper averages over.
XmarkQuery BuildXmarkQ1(const DataGraph& g, int person_group);
XmarkQuery BuildXmarkQ2(const DataGraph& g, int person_group,
                        int item_group);
XmarkQuery BuildXmarkQ3(const DataGraph& g, int person_group,
                        int item_group, int person2_group);

/// The Fig 11 GTPQ skeleton used by Exp-1/Exp-2 (Appendix C.2):
///
///   open_auction -- bidder -- person_ref => person(g) {-ad- education,
///                                            -pc- address -pc- city}
///                -- item_ref => item(g) { location, mailbox -- mail }
///                -- seller => person2 -- profile
///
/// `fs` maps node names to structural-predicate formulas over child
/// names (e.g. {"open_auction", "bidder | seller"}); nodes referenced
/// in any formula become predicate nodes (their whole subtree turns
/// predicate). `outputs` lists output node names; when empty, all
/// backbone nodes are output ("all potentially valid backbone nodes").
Result<XmarkQuery> BuildFig11Query(
    const DataGraph& g, int person_group, int item_group,
    const std::map<std::string, std::string>& fs,
    const std::set<std::string>& outputs);

/// The Table 3 output-node variants Q4..Q8 for Exp-1 (conjunctive).
Result<XmarkQuery> BuildExp1Query(const DataGraph& g, int person_group,
                                  int item_group, int variant);

/// The Table 4 predicate variants for Exp-2. Names: DIS1..3, NEG1..3,
/// DIS_NEG1..4.
Result<XmarkQuery> BuildExp2Query(const DataGraph& g, int person_group,
                                  int item_group,
                                  const std::string& name);

/// All Table 4 variant names, in the paper's order.
std::vector<std::string> Exp2QueryNames();

}  // namespace workload
}  // namespace gtpq

#endif  // GTPQ_WORKLOAD_XMARK_QUERIES_H_
