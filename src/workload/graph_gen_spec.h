#ifndef GTPQ_WORKLOAD_GRAPH_GEN_SPEC_H_
#define GTPQ_WORKLOAD_GRAPH_GEN_SPEC_H_

#include <string>

#include "common/status.h"
#include "graph/data_graph.h"

namespace gtpq {
namespace workload {

/// Deterministic graph-generator specs, shared by every tool that must
/// REPRODUCE a graph from a short string — `gteactl build/verify/serve`
/// and the network load generator (which rebuilds the serving graph
/// client-side for its differential baseline). Two processes given the
/// same spec always construct the identical graph:
///
///   xmark:<scale>                    workload XMark tree
///   dag:<nodes>[,<seed>[,<deg>]]     random DAG
///   digraph:<nodes>[,<seed>[,<deg>]] random digraph (cycles allowed)
///   tree:<nodes>[,<seed>]            random tree + cross edges
Result<DataGraph> GenerateGraphFromSpec(const std::string& spec);

}  // namespace workload
}  // namespace gtpq

#endif  // GTPQ_WORKLOAD_GRAPH_GEN_SPEC_H_
