#include "workload/arxiv.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace gtpq {
namespace workload {

DataGraph GenerateArxiv(const ArxivOptions& options) {
  const size_t papers = options.num_papers;
  const size_t authors = options.num_authors;
  DataGraph g(papers + authors);
  Rng rng(options.seed);

  // Zipf-ish paper labels (areas x journals draw a skewed mix).
  for (NodeId p = 0; p < papers; ++p) {
    const double z = rng.NextDouble();
    const auto label = static_cast<int64_t>(
        std::pow(z, 2.0) * static_cast<double>(options.num_paper_labels));
    g.SetLabel(p, std::min<int64_t>(
                      label,
                      static_cast<int64_t>(options.num_paper_labels) - 1));
  }
  const int64_t author_base = ArxivAuthorLabelBase(options);
  for (NodeId a = 0; a < authors; ++a) {
    g.SetLabel(static_cast<NodeId>(papers + a),
               author_base + static_cast<int64_t>(rng.NextBounded(
                                 options.num_author_labels)));
  }

  // Authorship: every author writes 1..5 papers.
  size_t edges = 0;
  for (NodeId a = 0; a < authors; ++a) {
    const size_t works = 1 + rng.NextBounded(5);
    for (size_t k = 0; k < works && edges < options.target_edges; ++k) {
      g.AddEdge(static_cast<NodeId>(papers + a),
                static_cast<NodeId>(rng.NextBounded(papers)));
      ++edges;
    }
  }
  // Citations: papers cite older papers with preferential attachment
  // (squared skew toward early papers keeps the graph deep and its
  // in-degree distribution heavy-tailed).
  while (edges < options.target_edges) {
    NodeId citing =
        1 + static_cast<NodeId>(rng.NextBounded(papers - 1));
    const double z = rng.NextDouble();
    NodeId cited = static_cast<NodeId>(
        std::pow(z, 2.0) * static_cast<double>(citing));
    if (cited >= citing) cited = citing - 1;
    // Edge direction citing -> cited; ids ascend with publication time,
    // so edges always point to strictly smaller ids: acyclic.
    g.AddEdge(citing, cited);
    ++edges;
  }
  g.Finalize();
  return g;
}

int64_t ArxivAuthorLabelBase(const ArxivOptions& options) {
  return static_cast<int64_t>(options.num_paper_labels);
}

}  // namespace workload
}  // namespace gtpq
