#include "workload/graph_gen_spec.h"

#include <cstdlib>
#include <optional>
#include <string_view>
#include <vector>

#include "common/string_util.h"
#include "graph/generators.h"
#include "workload/xmark.h"

namespace gtpq {
namespace workload {

namespace {

/// Parses "a[,b[,c]]" numeric generator params with defaults.
struct GenParams {
  double a = 0;
  uint64_t b = 0;
  double c = 0;
  int count = 0;  // how many fields were present
};

std::optional<GenParams> ParseGenParams(std::string_view rest) {
  GenParams p;
  const std::vector<std::string> parts = Split(rest, ',');
  if (parts.empty() || parts.size() > 3) return std::nullopt;
  char* end = nullptr;
  p.a = std::strtod(parts[0].c_str(), &end);
  if (end == parts[0].c_str() || *end != '\0') return std::nullopt;
  p.count = 1;
  if (parts.size() > 1) {
    p.b = std::strtoull(parts[1].c_str(), &end, 10);
    if (end == parts[1].c_str() || *end != '\0') return std::nullopt;
    p.count = 2;
  }
  if (parts.size() > 2) {
    p.c = std::strtod(parts[2].c_str(), &end);
    if (end == parts[2].c_str() || *end != '\0') return std::nullopt;
    p.count = 3;
  }
  return p;
}

}  // namespace

Result<DataGraph> GenerateGraphFromSpec(const std::string& spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("generator spec needs params: " + spec);
  }
  const std::string kind = spec.substr(0, colon);
  auto params = ParseGenParams(std::string_view(spec).substr(colon + 1));
  if (!params.has_value()) {
    return Status::InvalidArgument("malformed generator params: " + spec);
  }
  if (kind == "xmark") {
    XmarkOptions o;
    o.scale = params->a;
    if (o.scale <= 0) {
      return Status::InvalidArgument("xmark scale must be positive: " +
                                     spec);
    }
    return GenerateXmark(o);
  }
  const auto nodes = static_cast<size_t>(params->a);
  if (nodes < 1) {
    return Status::InvalidArgument("generator node count must be >= 1: " +
                                   spec);
  }
  if (kind == "dag") {
    RandomDagOptions o;
    o.num_nodes = nodes;
    if (params->count > 1) o.seed = params->b;
    if (params->count > 2) o.avg_degree = params->c;
    return RandomDag(o);
  }
  if (kind == "digraph") {
    RandomDigraphOptions o;
    o.num_nodes = nodes;
    if (params->count > 1) o.seed = params->b;
    if (params->count > 2) o.avg_degree = params->c;
    return RandomDigraph(o);
  }
  if (kind == "tree") {
    RandomTreeOptions o;
    o.num_nodes = nodes;
    if (params->count > 1) o.seed = params->b;
    return RandomTreeWithCrossEdges(o);
  }
  return Status::InvalidArgument("unknown generator kind '" + kind +
                                 "' in spec: " + spec);
}

}  // namespace workload
}  // namespace gtpq
