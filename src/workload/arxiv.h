#ifndef GTPQ_WORKLOAD_ARXIV_H_
#define GTPQ_WORKLOAD_ARXIV_H_

#include <cstdint>

#include "graph/data_graph.h"

namespace gtpq {
namespace workload {

/// Synthesizes an arXiv/HEP-Th-like citation graph matched to the
/// statistics of Section 5.2 — 9562 nodes, 28120 edges, 1132 distinct
/// labels (the real KDD-cup dump is no longer published; see DESIGN.md
/// substitutions). Paper nodes carry area/journal labels, author nodes
/// email-domain labels; edges are authorship (author -> paper) and
/// citation (paper -> older paper, preferential attachment), so the
/// graph is a DAG that is considerably denser and deeper than XMark —
/// the property the experiment exercises.
struct ArxivOptions {
  size_t num_papers = 7200;
  size_t num_authors = 2362;
  size_t target_edges = 28120;
  size_t num_paper_labels = 1100;
  size_t num_author_labels = 32;
  uint64_t seed = 1991;
};

DataGraph GenerateArxiv(const ArxivOptions& options);

/// First label id used for author nodes (paper labels start at 0).
int64_t ArxivAuthorLabelBase(const ArxivOptions& options);

}  // namespace workload
}  // namespace gtpq

#endif  // GTPQ_WORKLOAD_ARXIV_H_
