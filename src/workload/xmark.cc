#include "workload/xmark.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace gtpq {
namespace workload {

namespace {

// Element counts per unit scale, calibrated so that scale 1 lands near
// Table 1 (1.29M nodes / 1.54M edges).
constexpr double kPersonsPerScale = 64000;
constexpr double kItemsPerScale = 54000;
constexpr double kOpenPerScale = 30000;
constexpr double kClosedPerScale = 24000;

class Builder {
 public:
  explicit Builder(const XmarkOptions& options)
      : rng_(options.seed),
        num_persons_(std::max<size_t>(
            4, static_cast<size_t>(kPersonsPerScale * options.scale))),
        num_items_(std::max<size_t>(
            4, static_cast<size_t>(kItemsPerScale * options.scale))),
        num_open_(std::max<size_t>(
            2, static_cast<size_t>(kOpenPerScale * options.scale))),
        num_closed_(std::max<size_t>(
            2, static_cast<size_t>(kClosedPerScale * options.scale))) {}

  DataGraph Build() {
    NodeId site = Add(kSite, kInvalidNode);

    NodeId people = Add(kPeople, site);
    persons_.reserve(num_persons_);
    for (size_t i = 0; i < num_persons_; ++i) {
      NodeId person = Add(kPersonGroupBase +
                              static_cast<int64_t>(rng_.NextBounded(
                                  kNumGroups)),
                          people);
      persons_.push_back(person);
      Add(kName, person);
      Add(kEmail, person);
      NodeId address = Add(kAddress, person);
      Add(kCity, address);
      NodeId profile = Add(kProfile, person);
      if (rng_.NextBool(0.7)) Add(kEducation, profile);
      const int interests = static_cast<int>(rng_.NextBounded(3));
      for (int k = 0; k < interests; ++k) Add(kInterest, profile);
    }

    NodeId items = Add(kItems, site);
    items_.reserve(num_items_);
    for (size_t i = 0; i < num_items_; ++i) {
      NodeId item = Add(
          kItemGroupBase +
              static_cast<int64_t>(rng_.NextBounded(kNumGroups)),
          items);
      items_.push_back(item);
      Add(kLocation, item);
      Add(kQuantity, item);
      Add(kDescription, item);
      NodeId mailbox = Add(kMailbox, item);
      const int mails = static_cast<int>(rng_.NextBounded(3));
      for (int k = 0; k < mails; ++k) Add(kMail, mailbox);
    }

    NodeId opens = Add(kOpenAuctions, site);
    for (size_t i = 0; i < num_open_; ++i) {
      NodeId auction = Add(kOpenAuction, opens);
      Add(kInitial, auction);
      Add(kCurrent, auction);
      const int bidders = 1 + static_cast<int>(rng_.NextBounded(3));
      for (int k = 0; k < bidders; ++k) {
        NodeId bidder = Add(kBidder, auction);
        Add(kDate, bidder);
        Add(kTime, bidder);
        NodeId ref = Add(kPersonRef, bidder);
        Ref(ref, RandomPerson());
      }
      NodeId item_ref = Add(kItemRef, auction);
      Ref(item_ref, RandomItem());
      NodeId seller = Add(kSeller, auction);
      Ref(seller, RandomPerson());
      Add(kAnnotation, auction);
    }

    NodeId closeds = Add(kClosedAuctions, site);
    for (size_t i = 0; i < num_closed_; ++i) {
      NodeId auction = Add(kClosedAuction, closeds);
      Add(kPrice, auction);
      Add(kDate, auction);
      NodeId item_ref = Add(kItemRef, auction);
      Ref(item_ref, RandomItem());
      NodeId buyer = Add(kBuyer, auction);
      Ref(buyer, RandomPerson());
      NodeId seller = Add(kSeller, auction);
      Ref(seller, RandomPerson());
    }

    graph_.Finalize();
    return std::move(graph_);
  }

 private:
  NodeId Add(int64_t label, NodeId parent) {
    NodeId v = graph_.AddNode(label);
    if (parent != kInvalidNode) {
      graph_.AddEdge(parent, v);
      graph_.SetTreeParent(v, parent);
    } else {
      graph_.SetTreeParent(v, kInvalidNode);
    }
    return v;
  }

  void Ref(NodeId from, NodeId to) { graph_.AddEdge(from, to); }

  NodeId RandomPerson() {
    return persons_[rng_.NextBounded(persons_.size())];
  }
  NodeId RandomItem() { return items_[rng_.NextBounded(items_.size())]; }

  DataGraph graph_;
  Rng rng_;
  size_t num_persons_, num_items_, num_open_, num_closed_;
  std::vector<NodeId> persons_, items_;
};

}  // namespace

DataGraph GenerateXmark(const XmarkOptions& options) {
  Builder b(options);
  return b.Build();
}

size_t XmarkApproxNodes(double scale) {
  return static_cast<size_t>(
      kPersonsPerScale * 7.2 * scale + kItemsPerScale * 6.0 * scale +
      kOpenPerScale * 12.0 * scale + kClosedPerScale * 6.0 * scale + 5);
}

}  // namespace workload
}  // namespace gtpq
