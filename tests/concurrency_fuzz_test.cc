// Randomized differential harness for concurrent serving (fixed
// seeds): the same GTPQ batch is answered by one sequential reference
// engine and by QueryServer at 8 threads, and the result lists must be
// identical — per query, over random DAGs and cyclic digraphs, for
// GTEA on plain and decorated oracles. Any cross-thread state bleed in
// engines, oracles, or decorators shows up as a mismatched result set
// here (and as a report under the TSan CI job).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/engines.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "runtime/query_server.h"

namespace gtpq {
namespace {

struct FuzzCase {
  bool cyclic;
  uint64_t graph_seed;
};

std::vector<Gtpq> FuzzBatch(const DataGraph& g, size_t count,
                            uint64_t seed_base) {
  std::vector<Gtpq> queries;
  for (uint64_t seed = seed_base; queries.size() < count &&
                                  seed < seed_base + 20 * count;
       ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 4 + seed % 3;
    qo.pc_probability = 0.25;
    qo.predicate_fraction = 0.35;
    qo.output_fraction = 0.75;
    qo.disjunction_probability = 0.4;
    qo.negation_probability = 0.15;
    qo.seed = seed * 31 + 7;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (q.has_value()) queries.push_back(std::move(*q));
  }
  return queries;
}

class ConcurrencyFuzzTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConcurrencyFuzzTest, EightThreadServerMatchesSequential) {
  const std::string& spec = GetParam();
  for (const FuzzCase& fuzz :
       {FuzzCase{false, 19}, FuzzCase{false, 83}, FuzzCase{true, 57}}) {
    DataGraph g = fuzz.cyclic
                      ? RandomDigraph({.num_nodes = 60,
                                       .avg_degree = 2.0,
                                       .num_labels = 6,
                                       .seed = fuzz.graph_seed})
                      : RandomDag({.num_nodes = 80,
                                   .avg_degree = 2.2,
                                   .num_labels = 6,
                                   .locality = 1.0,
                                   .seed = fuzz.graph_seed});
    std::vector<Gtpq> queries = FuzzBatch(g, 20, fuzz.graph_seed * 101);
    ASSERT_GE(queries.size(), 8u) << "generator starved";

    // Sequential reference: ONE engine of the same spec, reused across
    // the whole batch on this thread.
    auto factory = SharedEngineFactory::Make(spec, g);
    ASSERT_NE(factory, nullptr) << spec;
    auto reference = factory->Create();
    std::vector<QueryResult> expected;
    expected.reserve(queries.size());
    for (const Gtpq& q : queries) expected.push_back(reference->Evaluate(q));

    QueryServer server(g, {.num_threads = 8, .engine_spec = spec});
    // Two passes: the second hits warm decorator caches, which must
    // not change any answer.
    for (int pass = 0; pass < 2; ++pass) {
      auto results = server.EvaluateBatch(queries);
      ASSERT_EQ(results.size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(results[i], expected[i])
            << spec << " pass " << pass << " graph seed "
            << fuzz.graph_seed << (fuzz.cyclic ? " (cyclic)" : " (dag)")
            << " query " << i << ":\n"
            << queries[i].ToString(*g.attr_names());
      }
    }
    EXPECT_EQ(server.stats().queries, 2 * queries.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ConcurrencyFuzzTest,
    ::testing::Values("gtea", "gtea:cached:contour",
                      "gtea:sharded:interval", "gtea:cached:sharded:interval",
                      "naive"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == '+' || c == '*') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gtpq
