// Conformance suite: every spec constructible through the factory —
// base backends AND cached:/sharded: decorator chains — must agree
// with the materialized TransitiveClosure ground truth: on point
// queries over random DAGs and cyclic digraphs, on the Section-2
// self-reachability semantics (Reaches(v, v) only on a cycle), and on
// the whole set-reachability API GTEA's pipeline consumes. The
// parameter space is AllReachabilitySpecs(), so a decorator (or a new
// backend) added to the factory is enrolled automatically and can
// never silently skip conformance.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "reachability/factory.h"
#include "reachability/transitive_closure.h"
#include "tests/test_util.h"

namespace gtpq {
namespace {

using testing::MakeGraph;

class BackendConformanceTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<ReachabilityOracle> BuildBackend(const DataGraph& g) {
    auto idx = MakeReachabilityIndex(std::string_view(GetParam()),
                                     g.graph());
    EXPECT_NE(idx, nullptr);
    EXPECT_EQ(idx->name(), GetParam());
    return idx;
  }

  void ExpectAllPairsMatch(const DataGraph& g) {
    auto tc = TransitiveClosure::Build(g.graph());
    auto idx = BuildBackend(g);
    for (NodeId a = 0; a < g.NumNodes(); ++a) {
      for (NodeId b = 0; b < g.NumNodes(); ++b) {
        ASSERT_EQ(idx->Reaches(a, b), tc.Reaches(a, b))
            << idx->name() << " disagrees on (" << a << ", " << b << ")";
      }
    }
  }
};

TEST_P(BackendConformanceTest, MatchesClosureOnRandomDags) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    RandomDagOptions o;
    o.num_nodes = 60;
    o.avg_degree = 2.5;
    o.seed = seed;
    ExpectAllPairsMatch(RandomDag(o));
  }
}

TEST_P(BackendConformanceTest, MatchesClosureOnCyclicDigraphs) {
  for (uint64_t seed : {2u, 11u, 31u}) {
    RandomDigraphOptions o;
    o.num_nodes = 50;
    o.avg_degree = 2.0;
    o.seed = seed;
    ExpectAllPairsMatch(RandomDigraph(o));
  }
}

TEST_P(BackendConformanceTest, SelfReachableOnlyOnCycles) {
  // Acyclic chain: no node reaches itself.
  DataGraph chain = MakeGraph(3, {0, 0, 0}, {{0, 1}, {1, 2}});
  auto idx = BuildBackend(chain);
  for (NodeId v = 0; v < 3; ++v) EXPECT_FALSE(idx->Reaches(v, v));

  // Triangle cycle plus a tail: cycle members reach themselves through
  // the cycle; the tail node hanging off it does not.
  DataGraph cyc =
      MakeGraph(4, {0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  idx = BuildBackend(cyc);
  for (NodeId v = 0; v < 3; ++v) EXPECT_TRUE(idx->Reaches(v, v));
  EXPECT_FALSE(idx->Reaches(3, 3));
  EXPECT_TRUE(idx->Reaches(0, 3));
  EXPECT_FALSE(idx->Reaches(3, 0));

  // Self-loop: a single-node cycle.
  DataGraph loop = MakeGraph(2, {0, 0}, {{0, 0}, {0, 1}});
  idx = BuildBackend(loop);
  EXPECT_TRUE(idx->Reaches(0, 0));
  EXPECT_FALSE(idx->Reaches(1, 1));
}

// The set API (summaries, batched probes, successor scans) must agree
// with the pairwise semantics derived from ground truth — this covers
// both the generic defaults and the contour-specialized overrides.
TEST_P(BackendConformanceTest, SetApiMatchesPairwiseGroundTruth) {
  for (bool cyclic : {false, true}) {
    DataGraph g = cyclic ? RandomDigraph({.num_nodes = 40,
                                          .avg_degree = 2.0,
                                          .num_labels = 4,
                                          .seed = 13})
                         : RandomDag({.num_nodes = 40,
                                      .avg_degree = 2.5,
                                      .num_labels = 4,
                                      .locality = 1.0,
                                      .seed = 13});
    auto tc = TransitiveClosure::Build(g.graph());
    auto idx = BuildBackend(g);

    Rng rng(99);
    for (int round = 0; round < 8; ++round) {
      // Random sorted duplicate-free member set.
      std::vector<NodeId> members;
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        if (rng.NextBounded(3) == 0) members.push_back(v);
      }
      if (members.empty()) members.push_back(0);

      auto targets = idx->SummarizeTargets(members);
      auto sources = idx->SummarizeSources(members);
      auto prepared = idx->PrepareSuccessorTargets(members);
      const ReachabilityOracle::SetSummary* target_sets[1] = {
          targets.get()};

      std::vector<NodeId> probes;
      for (NodeId v = 0; v < g.NumNodes(); ++v) probes.push_back(v);
      std::vector<std::vector<char>> down;
      idx->ReachesSetsBatch(probes, target_sets, &down);
      ASSERT_EQ(down.size(), 1u);
      std::vector<char> up;
      idx->SetReachesBatch(*sources, probes, &up);

      for (NodeId v : probes) {
        bool reaches_any = false, reached_by_any = false;
        std::vector<uint32_t> succ_expected;
        for (uint32_t mi = 0; mi < members.size(); ++mi) {
          if (tc.Reaches(v, members[mi])) {
            reaches_any = true;
            succ_expected.push_back(mi);
          }
          if (tc.Reaches(members[mi], v)) reached_by_any = true;
        }
        ASSERT_EQ(idx->ReachesSet(v, *targets), reaches_any)
            << idx->name() << " ReachesSet at " << v;
        ASSERT_EQ(idx->SetReaches(*sources, v), reached_by_any)
            << idx->name() << " SetReaches at " << v;
        ASSERT_EQ(down[0][v] != 0, reaches_any)
            << idx->name() << " ReachesSetsBatch at " << v;
        ASSERT_EQ(up[v] != 0, reached_by_any)
            << idx->name() << " SetReachesBatch at " << v;
        std::vector<uint32_t> succ;
        idx->SuccessorsAmong(v, *prepared, &succ);
        ASSERT_EQ(succ, succ_expected)
            << idx->name() << " SuccessorsAmong at " << v;
      }
    }
  }
}

// Guard against the enum and spec universes drifting apart: every base
// backend name must appear among the specs.
TEST(ReachabilitySpecsTest, SpecsCoverEveryBaseBackend) {
  const std::vector<std::string> specs = AllReachabilitySpecs();
  for (ReachabilityBackend kind : AllReachabilityBackends()) {
    EXPECT_NE(std::find(specs.begin(), specs.end(),
                        std::string(ReachabilityBackendName(kind))),
              specs.end());
  }
  // And both decorators must be represented.
  auto has_prefix = [&specs](std::string_view prefix) {
    return std::any_of(specs.begin(), specs.end(),
                       [prefix](const std::string& s) {
                         return s.rfind(prefix, 0) == 0;
                       });
  };
  EXPECT_TRUE(has_prefix("cached:"));
  EXPECT_TRUE(has_prefix("sharded:"));
  for (const std::string& spec : specs) {
    EXPECT_TRUE(IsValidReachabilitySpec(spec)) << spec;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, BackendConformanceTest,
    ::testing::ValuesIn(AllReachabilitySpecs()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), ':', '_');
      return name;
    });

}  // namespace
}  // namespace gtpq
