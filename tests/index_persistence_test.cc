// Persistence suite for the storage layer: every factory-constructible
// spec (base backends, cached:/sharded: decorators, nested chains) must
// round-trip through SaveReachabilityIndex / LoadReachabilityIndex and
// still agree with the materialized closure on the full point + set
// API; corrupted, truncated, version-skewed, and wrong-graph files must
// be rejected with clean Status errors, never crashes; and the
// factory's "file:<path>" spec must serve a loaded index through the
// same seams (gtea:file:..., SharedEngineFactory) a built index uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/engines.h"
#include "common/rng.h"
#include "core/gtea.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "reachability/factory.h"
#include "reachability/transitive_closure.h"
#include "runtime/engine_factory.h"
#include "storage/index_io.h"
#include "tests/test_util.h"

namespace gtpq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gtpq_" + name +
         std::string(storage::kIndexFileExtension);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

DataGraph TestDag(uint64_t seed = 3) {
  return RandomDag({.num_nodes = 60,
                    .avg_degree = 2.5,
                    .num_labels = 5,
                    .locality = 1.0,
                    .seed = seed});
}

DataGraph TestDigraph(uint64_t seed = 5) {
  return RandomDigraph(
      {.num_nodes = 50, .avg_degree = 2.0, .num_labels = 5, .seed = seed});
}

// ---------------------------------------------------------- round trip

class PersistenceRoundTripTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PersistenceRoundTripTest, SavedIndexAnswersLikeGroundTruth) {
  for (bool cyclic : {false, true}) {
    const DataGraph g = cyclic ? TestDigraph() : TestDag();
    auto built =
        MakeReachabilityIndex(std::string_view(GetParam()), g.graph());
    ASSERT_NE(built, nullptr) << GetParam();

    const std::string path = TempPath("roundtrip");
    ASSERT_TRUE(storage::SaveReachabilityIndex(*built, g.graph(), path)
                    .ok());
    auto loaded = storage::LoadReachabilityIndex(path, g.graph());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const auto& oracle = **loaded;
    EXPECT_EQ(oracle.name(), GetParam());

    // Full point-probe agreement with the golden closure...
    const auto tc = TransitiveClosure::Build(g.graph());
    for (NodeId a = 0; a < g.NumNodes(); ++a) {
      for (NodeId b = 0; b < g.NumNodes(); ++b) {
        ASSERT_EQ(oracle.Reaches(a, b), tc.Reaches(a, b))
            << GetParam() << (cyclic ? " cyclic" : " dag") << " ("
            << a << ", " << b << ")";
      }
    }
    // ...and the set API GTEA consumes, on a random member set.
    Rng rng(11);
    std::vector<NodeId> members;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (rng.NextBounded(3) == 0) members.push_back(v);
    }
    if (members.empty()) members.push_back(0);
    auto targets = oracle.SummarizeTargets(members);
    auto sources = oracle.SummarizeSources(members);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      bool down = false, up = false;
      for (NodeId m : members) {
        down = down || tc.Reaches(v, m);
        up = up || tc.Reaches(m, v);
      }
      ASSERT_EQ(oracle.ReachesSet(v, *targets), down) << GetParam();
      ASSERT_EQ(oracle.SetReaches(*sources, v), up) << GetParam();
    }
    std::remove(path.c_str());
  }
}

TEST_P(PersistenceRoundTripTest, InspectReportsTheSavedHeader) {
  const DataGraph g = TestDag();
  auto built =
      MakeReachabilityIndex(std::string_view(GetParam()), g.graph());
  ASSERT_NE(built, nullptr);
  const std::string path = TempPath("inspect");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*built, g.graph(), path).ok());

  auto info = storage::InspectReachabilityIndex(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->format_version, storage::kIndexFormatVersion);
  EXPECT_EQ(info->spec, GetParam());
  EXPECT_EQ(info->graph_fingerprint,
            storage::GraphFingerprint(g.graph()));
  EXPECT_EQ(info->num_nodes, g.NumNodes());
  EXPECT_EQ(info->num_edges, g.NumEdges());
  EXPECT_GT(info->payload_bytes, 0u);
  EXPECT_EQ(info->file_bytes, ReadFileBytes(path).size());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, PersistenceRoundTripTest,
    ::testing::ValuesIn(AllReachabilitySpecs()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), ':', '_');
      return name;
    });

// ---------------------------------------------------- rejection paths

class PersistenceRejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<DataGraph>(TestDag());
    auto built = MakeReachabilityIndex(std::string_view("three_hop"),
                                       g_->graph());
    ASSERT_NE(built, nullptr);
    path_ = TempPath("rejection");
    ASSERT_TRUE(
        storage::SaveReachabilityIndex(*built, g_->graph(), path_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 32u);
    auto info = storage::InspectReachabilityIndex(path_);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    payload_bytes_ = info->payload_bytes;
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes a mutated copy and expects loading to fail with `code`,
  /// both with and without the graph cross-check.
  void ExpectRejected(const std::string& mutated, StatusCode code) {
    WriteFileBytes(path_, mutated);
    auto plain = storage::LoadReachabilityIndex(path_);
    ASSERT_FALSE(plain.ok());
    EXPECT_EQ(plain.status().code(), code) << plain.status().ToString();
    auto checked = storage::LoadReachabilityIndex(path_, g_->graph());
    ASSERT_FALSE(checked.ok());
  }

  size_t PayloadBytes() const { return payload_bytes_; }

  std::unique_ptr<DataGraph> g_;
  std::string path_;
  std::string bytes_;
  size_t payload_bytes_ = 0;
};

TEST_F(PersistenceRejectionTest, MissingFileIsNotFound) {
  auto loaded = storage::LoadReachabilityIndex(path_ + ".does-not-exist");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(PersistenceRejectionTest, CorruptedMagicIsRejected) {
  std::string mutated = bytes_;
  mutated[0] = 'X';
  ExpectRejected(mutated, StatusCode::kParseError);
}

TEST_F(PersistenceRejectionTest, TruncationIsRejected) {
  for (size_t keep : {size_t{0}, size_t{4}, size_t{15}, size_t{40},
                      bytes_.size() / 2, bytes_.size() - 1}) {
    ExpectRejected(bytes_.substr(0, keep), StatusCode::kParseError);
  }
}

TEST_F(PersistenceRejectionTest, TruncationAtEveryByteIsRejected) {
  // Exhaustive truncation fuzz over the whole saved file: every prefix
  // must fail with a clean Status (the CRC covers all of them), and —
  // more importantly under ASan — must never allocate from a parsed
  // length that overruns the remaining bytes.
  for (size_t keep = 0; keep < bytes_.size(); ++keep) {
    WriteFileBytes(path_, bytes_.substr(0, keep));
    auto loaded = storage::LoadReachabilityIndex(path_);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes loaded";
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError)
        << "prefix " << keep << ": " << loaded.status().ToString();
  }
}

TEST_F(PersistenceRejectionTest, BodyTruncationAtEveryByteFailsCleanly) {
  // The CRC normally rejects truncation before the body parser ever
  // runs. Drive LoadOracleBody directly over every truncated body
  // prefix to exercise the section bounds checks themselves: a length
  // prefix must be validated against the remaining payload BEFORE any
  // allocation, so a lying count can neither overrun the buffer nor
  // OOM the process.
  const size_t body_start = bytes_.size() - PayloadBytes();
  const std::string_view body =
      std::string_view(bytes_).substr(body_start);
  for (size_t keep = 0; keep < body.size(); ++keep) {
    storage::Reader r(body.substr(0, keep));
    r.set_pod_align(true);
    auto oracle = storage::LoadOracleBody("three_hop", &r);
    ASSERT_FALSE(oracle.ok()) << "body prefix of " << keep << " bytes";
  }
  // The untruncated body still parses, proving the loop above fails
  // for the right reason.
  storage::Reader full(body);
  full.set_pod_align(true);
  ASSERT_TRUE(storage::LoadOracleBody("three_hop", &full).ok());
}

TEST_F(PersistenceRejectionTest, VersionMismatchIsRejected) {
  std::string mutated = bytes_;
  mutated[8] = static_cast<char>(storage::kIndexFormatVersion + 1);
  ExpectRejected(mutated, StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceRejectionTest, PayloadBitFlipFailsTheChecksum) {
  std::string mutated = bytes_;
  mutated[mutated.size() - 5] ^= 0x40;
  ExpectRejected(mutated, StatusCode::kParseError);
}

TEST_F(PersistenceRejectionTest, TrailingGarbageFailsTheChecksum) {
  ExpectRejected(bytes_ + "extra", StatusCode::kParseError);
}

TEST_F(PersistenceRejectionTest, WrongGraphFingerprintIsRejected) {
  // Untouched file: fine without a graph, fine with the right graph,
  // FailedPrecondition with a structurally different one.
  ASSERT_TRUE(storage::LoadReachabilityIndex(path_).ok());
  ASSERT_TRUE(storage::LoadReachabilityIndex(path_, g_->graph()).ok());
  const DataGraph other = TestDag(/*seed=*/99);
  auto loaded = storage::LoadReachabilityIndex(path_, other.graph());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceRejectionTest, SaveToUnwritablePathFails) {
  auto built = MakeReachabilityIndex(std::string_view("interval"),
                                     g_->graph());
  ASSERT_NE(built, nullptr);
  const Status s = storage::SaveReachabilityIndex(
      *built, g_->graph(), "/no-such-dir/deep/idx.gtpqidx");
  ASSERT_FALSE(s.ok());
}

// ------------------------------------------------------- file: serving

TEST(FileSpecTest, FactoryServesAndCrossChecksThePersistedIndex) {
  const DataGraph g = TestDag();
  auto built =
      MakeReachabilityIndex(std::string_view("contour"), g.graph());
  const std::string path = TempPath("filespec");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*built, g.graph(), path).ok());
  const std::string spec = "file:" + path;

  EXPECT_TRUE(IsValidReachabilitySpec(spec));
  EXPECT_TRUE(IsValidReachabilitySpec("cached:" + spec));
  EXPECT_FALSE(IsValidReachabilitySpec("file:" + path + ".missing"));
  // A whole-graph index cannot act as a per-shard sub-index: the
  // factory must refuse (not abort mid-shard-build) even though the
  // file itself is valid.
  EXPECT_FALSE(IsValidReachabilitySpec("sharded:" + spec));
  EXPECT_EQ(MakeReachabilityIndex(std::string_view("sharded:" + spec),
                                  g.graph()),
            nullptr);
  EXPECT_EQ(MakeReachabilityIndex(
                std::string_view("sharded:cached:" + spec), g.graph()),
            nullptr);

  auto oracle = MakeReachabilityIndex(std::string_view(spec), g.graph());
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->name(), "contour");
  const auto tc = TransitiveClosure::Build(g.graph());
  for (NodeId a = 0; a < g.NumNodes(); ++a) {
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      ASSERT_EQ(oracle->Reaches(a, b), tc.Reaches(a, b));
    }
  }

  // Decorating a loaded index works like decorating a built one.
  auto cached = MakeReachabilityIndex(
      std::string_view("cached:" + spec), g.graph());
  ASSERT_NE(cached, nullptr);
  EXPECT_TRUE(cached->Reaches(0, 1) == tc.Reaches(0, 1));

  // The fingerprint guard: a different graph refuses to serve it.
  const DataGraph other = TestDag(/*seed=*/77);
  EXPECT_EQ(MakeReachabilityIndex(std::string_view(spec), other.graph()),
            nullptr);
  std::remove(path.c_str());
}

TEST(FileSpecTest, GteaOverLoadedIndexMatchesNaive) {
  const DataGraph g = TestDag(/*seed=*/21);
  auto built = MakeReachabilityIndex(std::string_view("sharded:interval"),
                                     g.graph());
  const std::string path = TempPath("differential");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*built, g.graph(), path).ok());

  auto engine = MakeEngine("gtea:file:" + path, g);
  ASSERT_NE(engine, nullptr);
  BruteForceEngine naive(g);
  int evaluated = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 5;
    qo.pc_probability = 0.3;
    qo.predicate_fraction = 0.4;
    qo.output_fraction = 0.7;
    qo.disjunction_probability = 0.4;
    qo.negation_probability = 0.2;
    qo.seed = seed * 29 + 7;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    ++evaluated;
    ASSERT_EQ(engine->Evaluate(*q), naive.Evaluate(*q))
        << "seed " << seed;
  }
  EXPECT_GT(evaluated, 5);
  std::remove(path.c_str());
}

TEST(FileSpecTest, SharedEngineFactoryStampsWorkersOverALoadedIndex) {
  const DataGraph g = TestDag(/*seed=*/31);
  auto built =
      MakeReachabilityIndex(std::string_view("contour"), g.graph());
  const std::string path = TempPath("factory");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*built, g.graph(), path).ok());

  auto factory = SharedEngineFactory::Make("gtea:file:" + path, g);
  ASSERT_NE(factory, nullptr);
  auto a = factory->Create();
  auto b = factory->Create();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  BruteForceEngine naive(g);
  QueryGenOptions qo;
  qo.num_nodes = 5;
  qo.seed = 13;
  auto q = GenerateRandomQueryWithRetry(g, qo);
  ASSERT_TRUE(q.has_value());
  const auto expected = naive.Evaluate(*q);
  EXPECT_EQ(a->Evaluate(*q), expected);
  EXPECT_EQ(b->Evaluate(*q), expected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gtpq
