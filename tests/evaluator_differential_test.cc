// Differential tests for the Evaluator seam: GTEA must produce the
// identical normalized QueryResult as the naive brute-force engine
// under EVERY registered reachability backend, and engines must be
// reusable across queries without stale counters (stats hygiene).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/engines.h"
#include "core/gtea.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "tests/test_util.h"

namespace gtpq {
namespace {

using testing::SmallDag;

class BackendDifferentialTest
    : public ::testing::TestWithParam<ReachabilityBackend> {};

TEST_P(BackendDifferentialTest, GteaMatchesNaiveOnRandomQueries) {
  for (bool cyclic : {false, true}) {
    DataGraph g = cyclic ? RandomDigraph({.num_nodes = 50,
                                          .avg_degree = 2.0,
                                          .num_labels = 6,
                                          .seed = 17})
                         : RandomDag({.num_nodes = 70,
                                      .avg_degree = 2.0,
                                      .num_labels = 6,
                                      .locality = 1.0,
                                      .seed = 17});
    BruteForceEngine naive(g);
    GteaEngine gtea(g, GetParam());
    int evaluated = 0;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      QueryGenOptions qo;
      qo.num_nodes = 6;
      qo.pc_probability = 0.3;
      qo.predicate_fraction = 0.4;
      qo.output_fraction = 0.7;
      qo.disjunction_probability = 0.5;
      qo.negation_probability = 0.2;
      qo.seed = seed * 13 + 1;
      auto q = GenerateRandomQueryWithRetry(g, qo);
      if (!q.has_value()) continue;
      ++evaluated;
      auto expected = naive.Evaluate(*q);
      auto actual = gtea.Evaluate(*q);
      ASSERT_EQ(actual, expected)
          << "backend " << gtea.index().name() << " seed " << seed
          << (cyclic ? " (cyclic)" : " (dag)") << "\nquery:\n"
          << q->ToString(*g.attr_names());
    }
    EXPECT_GT(evaluated, 8) << "generator produced too few queries";
  }
}

// Stats hygiene: a shared engine evaluated back-to-back must report
// identical per-query counters, not accumulated ones.
TEST_P(BackendDifferentialTest, RepeatedEvaluateDoesNotAccumulateStats) {
  DataGraph g = RandomDag({.num_nodes = 60,
                           .avg_degree = 2.0,
                           .num_labels = 5,
                           .locality = 1.0,
                           .seed = 5});
  GteaEngine engine(g, GetParam());
  QueryGenOptions qo;
  qo.num_nodes = 5;
  qo.seed = 3;
  auto q = GenerateRandomQueryWithRetry(g, qo);
  ASSERT_TRUE(q.has_value());
  auto first = engine.Evaluate(*q);
  const uint64_t input1 = engine.stats().input_nodes;
  const uint64_t index1 = engine.stats().index_lookups;
  auto second = engine.Evaluate(*q);
  EXPECT_EQ(first, second);
  EXPECT_EQ(engine.stats().input_nodes, input1);
  EXPECT_EQ(engine.stats().index_lookups, index1);
  EXPECT_EQ(engine.index().stats().elements_looked_up, index1);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendDifferentialTest,
    ::testing::ValuesIn(AllReachabilityBackends()),
    [](const ::testing::TestParamInfo<ReachabilityBackend>& info) {
      return std::string(ReachabilityBackendName(info.param));
    });

// The engine factory resolves every documented spec, and the engines
// that evaluate graph queries exactly (GTEA on any backend, naive,
// twigstackd, hgjoin) agree on conjunctive queries.
TEST(MakeEngineTest, GraphExactEnginesAgree) {
  DataGraph g = SmallDag();
  auto reference = MakeEngine("naive", g);
  ASSERT_NE(reference, nullptr);

  QueryGenOptions qo;
  qo.num_nodes = 4;
  qo.pc_probability = 0.3;
  qo.output_fraction = 1.0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    qo.seed = seed;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    auto expected = reference->Evaluate(*q);
    for (const char* spec :
         {"gtea", "gtea:three_hop", "gtea:interval", "gtea:chain_cover",
          "gtea:transitive_closure", "gtea:sspi", "twigstackd", "hgjoin+",
          "hgjoin*"}) {
      auto engine = MakeEngine(spec, g);
      ASSERT_NE(engine, nullptr) << spec;
      EXPECT_EQ(engine->Evaluate(*q), expected)
          << spec << " disagrees with naive on seed " << seed;
    }
  }
}

// result_limit is part of the common contract: every engine caps its
// answer, and the capped tuples are genuine answers.
TEST(MakeEngineTest, ResultLimitHonoredAcrossEngines) {
  DataGraph g = SmallDag();
  QueryGenOptions qo;
  qo.num_nodes = 3;
  qo.seed = 2;
  auto q = GenerateRandomQueryWithRetry(g, qo);
  ASSERT_TRUE(q.has_value());
  auto full = MakeEngine("naive", g)->Evaluate(*q);
  ASSERT_GT(full.tuples.size(), 1u) << "query too selective for the test";
  GteaOptions capped;
  capped.result_limit = 1;
  for (const char* spec : {"gtea", "naive", "twigstackd", "hgjoin+"}) {
    auto engine = MakeEngine(spec, g);
    auto limited = engine->Evaluate(*q, capped);
    ASSERT_EQ(limited.tuples.size(), 1u) << spec;
    EXPECT_TRUE(std::find(full.tuples.begin(), full.tuples.end(),
                          limited.tuples[0]) != full.tuples.end())
        << spec << " returned a tuple outside the full answer";
  }
}

TEST(MakeEngineTest, ResolvesAllSpecsAndRejectsUnknown) {
  DataGraph g = SmallDag();
  for (const char* spec :
       {"gtea", "naive", "twigstack", "twig2stack", "twigstackd",
        "hgjoin+", "hgjoin*", "decompose:twigstackd"}) {
    auto engine = MakeEngine(spec, g);
    ASSERT_NE(engine, nullptr) << spec;
    EXPECT_FALSE(std::string(engine->name()).empty());
  }
  EXPECT_EQ(MakeEngine("no_such_engine", g), nullptr);
  EXPECT_EQ(MakeEngine("gtea:no_such_backend", g), nullptr);
}

}  // namespace
}  // namespace gtpq
