// Edge-case and failure-injection coverage for the GTEA pipeline,
// complementing the randomized equivalence sweep in gtea_test.cc.
#include <gtest/gtest.h>

#include "baselines/naive.h"
#include "core/gtea.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "test_util.h"

namespace gtpq {
namespace {

using logic::Formula;
using testing::MakeGraph;
using testing::SmallDag;

TEST(GteaEdgeTest, SingleNodeGraph) {
  DataGraph g = MakeGraph(1, {5}, {});
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(5));
  b.MarkOutput(r);
  GteaEngine engine(g);
  auto result = engine.Evaluate(b.Build().TakeValue());
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(result.tuples[0], (ResultTuple{0}));
}

TEST(GteaEdgeTest, SelfLoopIsOwnDescendant) {
  DataGraph g = MakeGraph(2, {1, 1}, {{0, 0}, {0, 1}});
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));
  QNodeId c = b.AddBackbone(r, EdgeType::kDescendant, "c", b.Label(1));
  b.MarkOutput(r);
  b.MarkOutput(c);
  GteaEngine engine(g);
  Gtpq q = b.Build().TakeValue();
  auto result = engine.Evaluate(q);
  EXPECT_EQ(result, EvaluateBruteForce(g, q));
  // (0,0) must appear: node 0 has a self loop.
  EXPECT_TRUE(std::find(result.tuples.begin(), result.tuples.end(),
                        ResultTuple{0, 0}) != result.tuples.end());
  // (1,1) must not: node 1 is acyclic.
  EXPECT_TRUE(std::find(result.tuples.begin(), result.tuples.end(),
                        ResultTuple{1, 1}) == result.tuples.end());
}

TEST(GteaEdgeTest, QueryDeeperThanGraph) {
  DataGraph g = MakeGraph(3, {0, 1, 2}, {{0, 1}, {1, 2}});
  QueryBuilder b(g.attr_names_ptr());
  QNodeId u0 = b.AddRoot("a", b.Label(0));
  QNodeId u1 = b.AddBackbone(u0, EdgeType::kDescendant, "b", b.Label(1));
  QNodeId u2 = b.AddBackbone(u1, EdgeType::kDescendant, "c", b.Label(2));
  QNodeId u3 = b.AddBackbone(u2, EdgeType::kDescendant, "d", b.Label(0));
  (void)u3;
  b.MarkOutput(u0);
  GteaEngine engine(g);
  EXPECT_TRUE(engine.Evaluate(b.Build().TakeValue()).tuples.empty());
}

TEST(GteaEdgeTest, AllPredicateChildrenWithMixedLogic) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));  // b-nodes 1, 2
  QNodeId p1 = b.AddPredicate(r, EdgeType::kDescendant, "p1", b.Label(2));
  QNodeId p2 = b.AddPredicate(r, EdgeType::kDescendant, "p2", b.Label(3));
  QNodeId p3 = b.AddPredicate(r, EdgeType::kDescendant, "p3", b.Label(5));
  // (p1 & !p3) | (p2 & p3)
  b.SetStructural(
      r, Formula::Or(
             Formula::And(Formula::Var(static_cast<int>(p1)),
                          Formula::Not(Formula::Var(static_cast<int>(p3)))),
             Formula::And(Formula::Var(static_cast<int>(p2)),
                          Formula::Var(static_cast<int>(p3)))));
  b.MarkOutput(r);
  GteaEngine engine(g);
  Gtpq q = b.Build().TakeValue();
  EXPECT_EQ(engine.Evaluate(q), EvaluateBruteForce(g, q));
}

TEST(GteaEdgeTest, StructuralPredicateConstantFalse) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));
  QNodeId p = b.AddPredicate(r, EdgeType::kDescendant, "p", b.Label(2));
  // p & !p == false: no match can ever satisfy the root.
  b.SetStructural(r, Formula::And(Formula::Var(static_cast<int>(p)),
                                  Formula::Not(Formula::Var(
                                      static_cast<int>(p)))));
  b.MarkOutput(r);
  GteaEngine engine(g);
  EXPECT_TRUE(engine.Evaluate(b.Build().TakeValue()).tuples.empty());
}

TEST(GteaEdgeTest, VacuousPredicateChildIsIgnored) {
  // A predicate child not referenced by fs imposes no constraint.
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(2));  // c-nodes 3, 5
  b.AddPredicate(r, EdgeType::kDescendant, "p", b.Label(77));  // no match
  b.MarkOutput(r);
  GteaEngine engine(g);
  Gtpq q = b.Build().TakeValue();
  auto result = engine.Evaluate(q);
  EXPECT_EQ(result, EvaluateBruteForce(g, q));
  EXPECT_EQ(result.tuples.size(), 2u);
}

TEST(GteaEdgeTest, ResultLimitCapsEnumeration) {
  RandomDagOptions o;
  o.num_nodes = 200;
  o.avg_degree = 3.0;
  o.num_labels = 2;
  o.seed = 3;
  DataGraph g = RandomDag(o);
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(0));
  QNodeId c = b.AddBackbone(r, EdgeType::kDescendant, "c", b.Label(1));
  (void)c;
  b.MarkOutput(r);
  b.MarkOutput(c);
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  GteaOptions capped;
  capped.result_limit = 10;
  auto limited = engine.Evaluate(q, capped);
  EXPECT_LE(limited.tuples.size(), 10u);
  auto full = engine.Evaluate(q);
  EXPECT_GT(full.tuples.size(), 10u);
  // The limited tuples must be genuine answers.
  for (const auto& t : limited.tuples) {
    EXPECT_TRUE(std::find(full.tuples.begin(), full.tuples.end(), t) !=
                full.tuples.end());
  }
}

TEST(GteaEdgeTest, SharedIndexAcrossEngines) {
  DataGraph g = SmallDag();
  std::shared_ptr<const ReachabilityOracle> idx =
      MakeReachabilityIndex(ReachabilityBackend::kContour, g.graph());
  GteaEngine e1(g, idx), e2(g, idx);
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));
  QNodeId c = b.AddBackbone(r, EdgeType::kDescendant, "c", b.Label(4));
  (void)c;
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  EXPECT_EQ(e1.Evaluate(q), e2.Evaluate(q));
}

TEST(GteaEdgeTest, DisconnectedOutputSubtreesCartesianProduct) {
  //     0(a)
  //    /    \        query: a* with two independent AD branches to
  //  1(b)   2(c)     b* and c*: answers are the Cartesian product.
  //  3(b)   4(c)
  DataGraph g = MakeGraph(5, {0, 1, 2, 1, 2},
                          {{0, 1}, {0, 2}, {1, 3}, {2, 4}});
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(0));
  QNodeId x = b.AddBackbone(r, EdgeType::kDescendant, "x", b.Label(1));
  QNodeId y = b.AddBackbone(r, EdgeType::kDescendant, "y", b.Label(2));
  b.MarkOutput(x);
  b.MarkOutput(y);
  GteaEngine engine(g);
  Gtpq q = b.Build().TakeValue();
  auto result = engine.Evaluate(q);
  EXPECT_EQ(result, EvaluateBruteForce(g, q));
  EXPECT_EQ(result.tuples.size(), 4u);  // {1,3} x {2,4}
}

TEST(GteaEdgeTest, StatsArePopulated) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));
  QNodeId c = b.AddBackbone(r, EdgeType::kDescendant, "c", b.Label(4));
  (void)c;
  b.MarkOutput(r);
  GteaEngine engine(g);
  engine.Evaluate(b.Build().TakeValue());
  EXPECT_GT(engine.stats().input_nodes, 0u);
  EXPECT_GE(engine.stats().total_ms, 0.0);
  EXPECT_GT(engine.stats().intermediate_size, 0u);
}

// Dense randomized sweep against brute force over tree+cross graphs
// with deep queries (regression net for the PC repair path).
TEST(GteaEdgeTest, DeepQueriesOnTreeCrossGraphs) {
  RandomTreeOptions o;
  o.num_nodes = 100;
  o.cross_edge_fraction = 0.35;
  o.max_depth = 10;
  o.num_labels = 4;
  o.seed = 77;
  DataGraph g = RandomTreeWithCrossEdges(o);
  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  GteaEngine engine(g);
  int evaluated = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 8;
    qo.pc_probability = 0.5;
    qo.predicate_fraction = 0.4;
    qo.disjunction_probability = 0.4;
    qo.negation_probability = 0.25;
    qo.output_fraction = 0.5;
    qo.max_walk = 5;
    qo.seed = seed * 101;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    auto expected = EvaluateBruteForce(g, tc, *q);
    ASSERT_EQ(engine.Evaluate(*q), expected)
        << "seed " << seed << "\n"
        << q->ToString(*g.attr_names());
    ++evaluated;
  }
  EXPECT_GT(evaluated, 15);
}

}  // namespace
}  // namespace gtpq
