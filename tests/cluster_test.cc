// Cluster serving tests: .gtpqmap round-trip + rejection suite (bad
// magic, corruption, overlapping/uncovered ranges, shard-index
// fingerprint mismatch), PROBE wire codec, degree-aware cut planning,
// and the ShardRouter differential — a 3-shard in-process cluster must
// answer every probe exactly like the in-process `sharded:` oracle and
// the materialized closure, before and after a routed update with its
// epoch barrier. Enrolled in the TSan CI job.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/partition.h"
#include "cluster/partition_map.h"
#include "cluster/shard_router.h"
#include "common/rng.h"
#include "dynamic/graph_delta.h"
#include "graph/graph_io.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/federation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "reachability/sharded_oracle.h"
#include "reachability/transitive_closure.h"
#include "storage/index_io.h"
#include "tests/test_util.h"
#include "workload/graph_gen_spec.h"

namespace gtpq {
namespace {

using cluster::BuildPartition;
using cluster::BuildPartitionOptions;
using cluster::LoadPartitionMap;
using cluster::PartitionMap;
using cluster::PlanContiguousCuts;
using cluster::SavePartitionMap;
using cluster::ShardRange;
using cluster::ShardRouter;
using cluster::VerifyShardIndex;

std::string TempDirFor(const std::string& name) {
  return ::testing::TempDir() + "gtpq_cluster_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A minimal structurally-valid map over an 8-vertex path graph with no
/// boundary machinery — the seed the rejection tests corrupt.
PartitionMap TinyMap() {
  PartitionMap map;
  map.num_nodes = 8;
  map.num_edges = 0;
  map.ranges = {{0, 4}, {4, 8}};
  map.endpoints = {"127.0.0.1:1", "127.0.0.1:2"};
  map.shard_fingerprints = {1, 2};
  map.shard_overlay.resize(2);
  Digraph empty_overlay(0);
  empty_overlay.Finalize();
  map.overlay_closure = std::make_shared<const TransitiveClosure>(
      TransitiveClosure::Build(empty_overlay));
  return map;
}

// ------------------------------------------------------ map round trip

TEST(PartitionMapTest, BuildRoundTripsThroughDisk) {
  auto graph = workload::GenerateGraphFromSpec("digraph:200,11,3");
  ASSERT_TRUE(graph.ok());
  const std::string dir = TempDirFor("roundtrip");
  std::filesystem::create_directories(dir);

  BuildPartitionOptions options;
  options.plan.num_shards = 3;
  options.endpoints = {"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"};
  auto built = BuildPartition(*graph, options, dir);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  auto loaded = LoadPartitionMap(built->map_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const PartitionMap& a = built->map;
  const PartitionMap& b = *loaded;
  EXPECT_EQ(a.graph_fingerprint, b.graph_fingerprint);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.num_edges, b.num_edges);
  EXPECT_EQ(a.inner_spec, b.inner_spec);
  ASSERT_EQ(a.num_shards(), b.num_shards());
  for (size_t s = 0; s < a.num_shards(); ++s) {
    EXPECT_EQ(a.ranges[s].begin, b.ranges[s].begin);
    EXPECT_EQ(a.ranges[s].end, b.ranges[s].end);
    EXPECT_EQ(a.endpoints[s], b.endpoints[s]);
    EXPECT_EQ(a.shard_fingerprints[s], b.shard_fingerprints[s]);
    EXPECT_EQ(a.shard_overlay[s], b.shard_overlay[s]);
  }
  EXPECT_EQ(a.boundary, b.boundary);
  EXPECT_EQ(a.cross_edges, b.cross_edges);
  ASSERT_NE(b.overlay_closure, nullptr);
  EXPECT_EQ(a.overlay_closure->NumNodes(), b.overlay_closure->NumNodes());
  for (uint32_t x = 0; x < a.boundary.size(); ++x) {
    for (uint32_t y = 0; y < a.boundary.size(); ++y) {
      EXPECT_EQ(a.overlay_closure->Reaches(x, y),
                b.overlay_closure->Reaches(x, y));
    }
  }

  // ShardOf agrees with the ranges, and uncovered ids are flagged.
  for (NodeId v = 0; v < graph->NumNodes(); ++v) {
    const size_t s = b.ShardOf(v);
    ASSERT_LT(s, b.num_shards());
    EXPECT_GE(v, b.ranges[s].begin);
    EXPECT_LT(v, b.ranges[s].end);
  }
  EXPECT_EQ(b.ShardOf(static_cast<NodeId>(graph->NumNodes())),
            b.num_shards());

  // Every written shard index is stamped with the fingerprint the map
  // expects; pairing a shard with another shard's index is rejected.
  for (size_t s = 0; s < b.num_shards(); ++s) {
    EXPECT_TRUE(VerifyShardIndex(b, s, built->index_paths[s]).ok());
  }
  const Status crossed = VerifyShardIndex(b, 0, built->index_paths[1]);
  EXPECT_EQ(crossed.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(crossed.message().find("different subgraph"),
            std::string::npos);
}

// ------------------------------------------------------ rejection suite

TEST(PartitionMapTest, RejectsBadMagic) {
  const std::string path = TempDirFor("badmagic.gtpqmap");
  ASSERT_TRUE(SavePartitionMap(TinyMap(), path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  const Status st = LoadPartitionMap(path).status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("magic"), std::string::npos);
}

TEST(PartitionMapTest, RejectsCorruptedBody) {
  const std::string path = TempDirFor("corrupt.gtpqmap");
  ASSERT_TRUE(SavePartitionMap(TinyMap(), path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] ^= 0x40;
  WriteFileBytes(path, bytes);
  const Status st = LoadPartitionMap(path).status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
}

TEST(PartitionMapTest, RejectsTruncation) {
  const std::string path = TempDirFor("trunc.gtpqmap");
  ASSERT_TRUE(SavePartitionMap(TinyMap(), path).ok());
  std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 5));
  EXPECT_EQ(LoadPartitionMap(path).status().code(),
            StatusCode::kParseError);
}

TEST(PartitionMapTest, RejectsOverlappingRanges) {
  PartitionMap map = TinyMap();
  map.ranges = {{0, 5}, {4, 8}};  // vertex 4 owned twice
  const std::string path = TempDirFor("overlap.gtpqmap");
  ASSERT_TRUE(SavePartitionMap(map, path).ok());  // Save trusts callers
  const Status st = LoadPartitionMap(path).status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("overlapping"), std::string::npos);
}

TEST(PartitionMapTest, RejectsUncoveredVertex) {
  PartitionMap map = TinyMap();
  map.ranges = {{0, 3}, {4, 8}};  // vertex 3 unowned
  const std::string path = TempDirFor("gap.gtpqmap");
  ASSERT_TRUE(SavePartitionMap(map, path).ok());
  const Status st = LoadPartitionMap(path).status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("uncovered"), std::string::npos);

  map.ranges = {{1, 4}, {4, 8}};  // vertex 0 unowned
  ASSERT_TRUE(SavePartitionMap(map, path).ok());
  EXPECT_NE(LoadPartitionMap(path).status().message().find("uncovered"),
            std::string::npos);

  map.ranges = {{0, 4}, {4, 7}};  // vertex 7 unowned
  ASSERT_TRUE(SavePartitionMap(map, path).ok());
  EXPECT_FALSE(LoadPartitionMap(path).ok());
}

TEST(PartitionMapTest, RejectsShardCountDisagreement) {
  PartitionMap map = TinyMap();
  map.endpoints.pop_back();
  EXPECT_EQ(map.Validate().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------- wire codec

TEST(ProbeCodecTest, RequestAndResultRoundTrip) {
  net::ProbeRequest request;
  request.reverse = true;
  request.pivot = 41;
  request.ids = {0, 7, 13, 41};
  net::ProbeRequest request2;
  ASSERT_TRUE(
      net::DecodeProbeRequest(net::EncodeProbeRequest(request), &request2)
          .ok());
  EXPECT_EQ(request2.reverse, request.reverse);
  EXPECT_EQ(request2.pivot, request.pivot);
  EXPECT_EQ(request2.ids, request.ids);

  net::ProbeResult result;
  result.epoch = 9;
  result.count = 4;
  result.bits = {0b1010};
  net::ProbeResult result2;
  ASSERT_TRUE(
      net::DecodeProbeResult(net::EncodeProbeResult(result), &result2)
          .ok());
  EXPECT_EQ(result2.epoch, 9u);
  ASSERT_EQ(result2.count, 4u);
  EXPECT_FALSE(result2.Get(0));
  EXPECT_TRUE(result2.Get(1));
  EXPECT_FALSE(result2.Get(2));
  EXPECT_TRUE(result2.Get(3));
}

TEST(ProbeCodecTest, RejectsMalformedFrames) {
  net::ProbeRequest request;
  // Direction byte beyond {0, 1}.
  std::string bad = net::EncodeProbeRequest({false, 3, {1}});
  bad[0] = 2;
  EXPECT_FALSE(net::DecodeProbeRequest(bad, &request).ok());
  // Truncated payload.
  const std::string good = net::EncodeProbeRequest({true, 5, {1, 2, 3}});
  EXPECT_FALSE(
      net::DecodeProbeRequest(good.substr(0, good.size() - 2), &request)
          .ok());
  // Result whose bitmask disagrees with its count.
  net::ProbeResult result;
  result.epoch = 1;
  result.count = 9;  // needs 2 bytes
  result.bits = {0xff, 0x01};
  std::string payload = net::EncodeProbeResult(result);
  net::ProbeResult out;
  ASSERT_TRUE(net::DecodeProbeResult(payload, &out).ok());
  EXPECT_FALSE(net::DecodeProbeResult(payload.substr(0, payload.size() - 1),
                                      &out)
                   .ok());
}

// ------------------------------------------------------------ planning

TEST(PartitionPlanTest, CutsAreMonotoneAndCheaper) {
  auto graph = workload::GenerateGraphFromSpec("dag:400,9,4");
  ASSERT_TRUE(graph.ok());
  const Digraph& g = graph->graph();

  cluster::PartitionPlanOptions equal;
  equal.num_shards = 4;
  equal.degree_aware = false;
  cluster::PartitionPlanOptions aware = equal;
  aware.degree_aware = true;

  const auto cost_of = [&](const std::vector<size_t>& cuts) {
    size_t crossing = 0;
    const auto shard_of = [&](NodeId v) {
      return static_cast<size_t>(
                 std::upper_bound(cuts.begin(), cuts.end(),
                                  static_cast<size_t>(v)) -
                 cuts.begin()) -
             1;
    };
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v : g.OutNeighbors(u)) {
        if (shard_of(u) != shard_of(v)) ++crossing;
      }
    }
    return crossing;
  };

  for (const auto& plan : {equal, aware}) {
    const std::vector<size_t> cuts = PlanContiguousCuts(g, plan);
    ASSERT_EQ(cuts.size(), plan.num_shards + 1);
    EXPECT_EQ(cuts.front(), 0u);
    EXPECT_EQ(cuts.back(), g.NumNodes());
    EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
  }
  EXPECT_LE(cost_of(PlanContiguousCuts(g, aware)),
            cost_of(PlanContiguousCuts(g, equal)));
}

// ----------------------------------------------------- router fixture

#define START_OR_SKIP(server)                                   \
  do {                                                          \
    const Status _st = (server).Start();                        \
    if (_st.code() == StatusCode::kUnimplemented) {             \
      GTEST_SKIP() << _st.ToString();                           \
    }                                                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

/// A full in-process cluster: partition artifacts on disk, one
/// NetServer per shard serving "gtea:file:<shard idx>", and a
/// connected router.
struct TestCluster {
  DataGraph g;
  cluster::PartitionArtifacts art;
  std::vector<DataGraph> shard_graphs;
  std::vector<std::unique_ptr<net::NetServer>> servers;
  std::unique_ptr<ShardRouter> router;
};

void BringUp(const std::string& gen_spec, const std::string& name,
             TestCluster* cluster, int health_interval_ms = 500) {
  auto graph = workload::GenerateGraphFromSpec(gen_spec);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  cluster->g = graph.TakeValue();
  const std::string dir = TempDirFor(name);
  std::filesystem::create_directories(dir);

  BuildPartitionOptions options;
  options.plan.num_shards = 3;
  auto built = BuildPartition(cluster->g, options, dir);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  cluster->art = built.TakeValue();

  const size_t shards = cluster->art.map.num_shards();
  cluster->shard_graphs.reserve(shards);
  std::vector<std::string> endpoints;
  for (size_t s = 0; s < shards; ++s) {
    auto local = LoadDataGraphFromFile(cluster->art.graph_paths[s]);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    cluster->shard_graphs.push_back(local.TakeValue());
    net::NetServerOptions server_options;
    server_options.runtime.num_threads = 2;
    server_options.runtime.engine_spec =
        "gtea:file:" + cluster->art.index_paths[s];
    cluster->servers.push_back(std::make_unique<net::NetServer>(
        cluster->shard_graphs[s], server_options));
    START_OR_SKIP(*cluster->servers[s]);
    endpoints.push_back("127.0.0.1:" +
                        std::to_string(cluster->servers[s]->port()));
  }

  cluster::ShardRouterOptions router_options;
  router_options.endpoints = std::move(endpoints);
  router_options.health_interval_ms = health_interval_ms;
  auto router = ShardRouter::Connect(cluster->art.map, router_options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  cluster->router = router.TakeValue();
}

void ExpectDifferential(const TestCluster& cluster, uint64_t seed,
                        size_t samples) {
  // Ground truths: the in-process sharded oracle over the SAME cuts,
  // and the materialized closure.
  ShardedOracleOptions sharded_options;
  sharded_options.num_shards = cluster.art.map.num_shards();
  sharded_options.inner_spec = cluster.art.map.inner_spec;
  for (const ShardRange& r : cluster.art.map.ranges) {
    sharded_options.custom_starts.push_back(static_cast<size_t>(r.begin));
  }
  sharded_options.custom_starts.push_back(cluster.g.NumNodes());
  ShardedOracle sharded(cluster.g.graph(), sharded_options);
  const TransitiveClosure closure =
      TransitiveClosure::Build(cluster.g.graph());

  Rng rng(seed);
  const size_t n = cluster.g.NumNodes();
  for (size_t i = 0; i < samples; ++i) {
    const NodeId from = static_cast<NodeId>(rng.NextBounded(n));
    // Bias toward self-probes occasionally: cyclic self-reachability is
    // the subtlest semantic the overlay has to preserve.
    const NodeId to = (i % 7 == 0)
                          ? from
                          : static_cast<NodeId>(rng.NextBounded(n));
    const bool expected = closure.Reaches(from, to);
    ASSERT_EQ(sharded.Reaches(from, to), expected)
        << "sharded oracle disagrees at (" << from << ", " << to << ")";
    ASSERT_EQ(cluster.router->Reaches(from, to), expected)
        << "router disagrees at (" << from << ", " << to << ")";
  }
}

TEST(ShardRouterTest, DifferentialAcrossGeneratorSpecs) {
  const struct {
    const char* gen;
    const char* name;
  } specs[] = {
      {"dag:120,3,3", "dag"},
      {"digraph:140,5,4", "digraph"},
      {"tree:100,2", "tree"},
  };
  for (const auto& spec : specs) {
    SCOPED_TRACE(spec.gen);
    TestCluster cluster;
    BringUp(spec.gen, std::string("diff_") + spec.name, &cluster);
    if (cluster.router == nullptr) return;  // skipped platform
    ExpectDifferential(cluster, 0xc1057e4, 600);
  }
}

TEST(ShardRouterTest, TracedProbeRecordsShardChildSpans) {
  TestCluster cluster;
  BringUp("digraph:150,9,3", "traced", &cluster);
  if (cluster.router == nullptr) return;  // skipped platform

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  const uint64_t trace = obs::NewTraceId();
  const uint64_t parent = recorder.NewSpanId();
  const auto& ranges = cluster.art.map.ranges;
  const NodeId from = static_cast<NodeId>(
      (ranges[0].begin + ranges[0].end) / 2);
  const NodeId to = static_cast<NodeId>(
      (ranges[2].begin + ranges[2].end) / 2);
  {
    // Stand in for the query worker: EvaluateOnWorker installs exactly
    // this context around engine evaluation.
    obs::ScopedTraceContext scoped({trace, parent});
    cluster.router->Reaches(from, to);
  }

  // The cross-shard probe fan-out landed as "probe shard=N" spans, all
  // children of the worker's span, under the one trace id. The shard
  // servers run in THIS process, so their "serve probe" spans land in
  // the same ring — parented under the router's probe span ids, exactly
  // the cross-process links the stitched cluster trace relies on.
  const std::vector<obs::Span> spans = recorder.SpansForTrace(trace);
  std::vector<obs::Span> probe_spans;
  std::vector<obs::Span> serve_spans;
  for (const obs::Span& span : spans) {
    EXPECT_EQ(span.trace_id, trace);
    if (span.name.rfind("probe shard=", 0) == 0) {
      probe_spans.push_back(span);
    } else {
      EXPECT_EQ(span.name, "serve probe") << span.name;
      serve_spans.push_back(span);
    }
  }
  ASSERT_GE(probe_spans.size(), 1u);
  EXPECT_LE(probe_spans.size(), 2u);  // forward + (optional) reverse
  std::vector<std::string> shards_probed;
  std::vector<uint64_t> probe_span_ids;
  for (const obs::Span& span : probe_spans) {
    EXPECT_EQ(span.parent_span, parent);
    EXPECT_NE(span.span_id, 0u);
    EXPECT_GE(span.dur_us, 0.0);
    shards_probed.push_back(span.name);
    probe_span_ids.push_back(span.span_id);
  }
  EXPECT_EQ(std::unique(shards_probed.begin(), shards_probed.end()),
            shards_probed.end());  // distinct shards
  ASSERT_GE(serve_spans.size(), 1u);
  for (const obs::Span& span : serve_spans) {
    EXPECT_NE(std::find(probe_span_ids.begin(), probe_span_ids.end(),
                        span.parent_span),
              probe_span_ids.end())
        << "serve span not parented under a router probe span";
  }

  // The router's Chrome-trace export carries the trace id.
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(trace));
  EXPECT_NE(recorder.RenderChromeTrace().find(hex), std::string::npos);

  // Untraced probes stay out of the ring entirely.
  const uint64_t before = recorder.total_recorded();
  cluster.router->Reaches(from, to);
  EXPECT_EQ(recorder.total_recorded(), before);

  // And the per-shard probe metrics registered by the router moved.
  uint64_t probes_total = 0;
  for (size_t s = 0; s < cluster.art.map.num_shards(); ++s) {
    probes_total += obs::Registry::Global()
                        .GetCounter("gtpq_shard_probes_total{shard=\"" +
                                    std::to_string(s) + "\"}")
                        ->Value();
  }
  EXPECT_GE(probes_total, 2u);
}

TEST(ShardRouterTest, FederatedSnapshotAndStitchedClusterTrace) {
  TestCluster cluster;
  BringUp("digraph:130,5,3", "federated", &cluster);
  if (cluster.router == nullptr) return;  // skipped platform

  // Drive a little traffic so the probe counters move.
  for (NodeId v = 0; v < 20; ++v) {
    cluster.router->Reaches(v, static_cast<NodeId>(v * 3 % 100));
  }

  const auto fed = cluster.router->FederatedMetricsSnapshot();
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();

  // Per-shard copies carry shard="N"; the router's own registry comes
  // back as shard="router"; member series that were already
  // shard-labeled (the router's probe counters live in the same
  // process-global registry here) pass through un-doubled.
  uint64_t aggregate = 0;
  uint64_t labeled_sum = 0;
  bool saw_router_label = false;
  for (const auto& [name, value] : fed->counters) {
    if (name == "gtpq_queries_total") aggregate = value;
    for (size_t s = 0; s < 3; ++s) {
      if (name ==
          "gtpq_queries_total{shard=\"" + std::to_string(s) + "\"}") {
        labeled_sum += value;
      }
    }
    if (name.find("{shard=\"router\"") != std::string::npos) {
      saw_router_label = true;
    }
    EXPECT_EQ(name.find("shard=\"router\",shard="), std::string::npos)
        << name;
  }
  EXPECT_EQ(labeled_sum, aggregate);
  EXPECT_TRUE(saw_router_label);

  // Histogram federation: the unlabeled aggregate's _count equals the
  // sum of the per-shard _counts (exact bucket merge, the acceptance
  // invariant for the cluster /metrics endpoint).
  uint64_t histogram_aggregate = 0;
  uint64_t histogram_labeled_sum = 0;
  for (const auto& [name, snap] : fed->histograms) {
    if (name == "gtpq_query_latency_us") {
      histogram_aggregate = snap.TotalCount();
    } else if (name.rfind("gtpq_query_latency_us{shard=\"", 0) == 0 &&
               name.find("router") == std::string::npos) {
      histogram_labeled_sum += snap.TotalCount();
    }
  }
  EXPECT_EQ(histogram_labeled_sum, histogram_aggregate);

  // The merged snapshot renders as exposition text with the per-shard
  // labels intact.
  const std::string text = obs::RenderPrometheusSnapshot(*fed);
  EXPECT_NE(text.find("gtpq_queries_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gtpq_shard_healthy{shard=\"1\"} 1"),
            std::string::npos);

  // Stitched cluster trace: one traced probe, then pull spans from
  // every process. Four groups (router + 3 shards) with distinct pids,
  // rendered as ONE Chrome trace with a process_name metadata event
  // per group.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  const uint64_t trace = obs::NewTraceId();
  {
    obs::ScopedTraceContext scoped({trace, recorder.NewSpanId()});
    cluster.router->Reaches(
        static_cast<NodeId>(cluster.art.map.ranges[0].begin),
        static_cast<NodeId>(cluster.art.map.ranges[2].begin));
  }
  const auto groups = cluster.router->CollectClusterSpans(trace);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups->size(), 4u);
  EXPECT_EQ((*groups)[0].process_name, "router");
  std::vector<uint32_t> pids;
  for (const obs::ProcessSpans& group : *groups) {
    pids.push_back(group.pid);
  }
  std::sort(pids.begin(), pids.end());
  EXPECT_EQ(pids, (std::vector<uint32_t>{1, 2, 3, 4}));

  const std::string json = obs::RenderChromeTrace(*groups);
  size_t metadata_events = 0;
  for (size_t pos = json.find("\"ph\":\"M\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"M\"", pos + 1)) {
    ++metadata_events;
  }
  EXPECT_EQ(metadata_events, 4u);
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(trace));
  EXPECT_NE(json.find(hex), std::string::npos);
}

TEST(ShardRouterTest, HealthProberDemotesDeadShardAndFederationSkipsIt) {
  TestCluster cluster;
  // Background prober disabled: this test drives ProbeHealthOnce() by
  // hand so the threshold arithmetic is deterministic.
  BringUp("dag:90,3,3", "health", &cluster, /*health_interval_ms=*/0);
  if (cluster.router == nullptr) return;  // skipped platform

  obs::Registry& registry = obs::Registry::Global();
  cluster.router->ProbeHealthOnce();
  std::vector<bool> health = cluster.router->shard_health();
  ASSERT_EQ(health.size(), 3u);
  for (const bool healthy : health) EXPECT_TRUE(healthy);
  EXPECT_EQ(
      registry.GetGauge("gtpq_shard_healthy{shard=\"1\"}")->Value(), 1);

  const uint64_t failures_before =
      registry
          .GetCounter("gtpq_shard_health_failures_total{shard=\"1\"}")
          ->Value();
  cluster.servers[1]->Stop();

  // First failed sweep counts a failure but stays below the demotion
  // threshold (2); the second flips the gauge.
  cluster.router->ProbeHealthOnce();
  EXPECT_TRUE(cluster.router->shard_health()[1]);
  cluster.router->ProbeHealthOnce();
  health = cluster.router->shard_health();
  EXPECT_TRUE(health[0]);
  EXPECT_FALSE(health[1]);
  EXPECT_TRUE(health[2]);
  EXPECT_EQ(
      registry.GetGauge("gtpq_shard_healthy{shard=\"1\"}")->Value(), 0);
  EXPECT_GE(
      registry
          .GetCounter("gtpq_shard_health_failures_total{shard=\"1\"}")
          ->Value(),
      failures_before + 2);

  // Federation stays best-effort: the dead member is skipped (no
  // shard="1" copy of its registry), the live members still merge.
  const auto fed = cluster.router->FederatedMetricsSnapshot();
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  bool saw_shard0 = false;
  bool saw_shard1 = false;
  for (const auto& [name, value] : fed->counters) {
    if (name == "gtpq_queries_total{shard=\"0\"}") saw_shard0 = true;
    if (name == "gtpq_queries_total{shard=\"1\"}") saw_shard1 = true;
  }
  EXPECT_TRUE(saw_shard0);
  EXPECT_FALSE(saw_shard1);
}

TEST(ShardRouterTest, NativeUpdateCommitsEpochBarrier) {
  TestCluster cluster;
  BringUp("digraph:150,7,3", "update", &cluster);
  if (cluster.router == nullptr) return;  // skipped platform

  const PartitionMap& map = cluster.art.map;
  ASSERT_TRUE(cluster.router->SupportsNativeUpdates());
  const std::vector<uint64_t> before = cluster.router->shard_epochs();
  EXPECT_EQ(*std::max_element(before.begin(), before.end()), 0u);

  // A fresh intra-shard edge inside shard 1 between two non-adjacent
  // vertices.
  const NodeId lo = static_cast<NodeId>(map.ranges[1].begin);
  const NodeId hi = static_cast<NodeId>(map.ranges[1].end);
  NodeId from = lo, to = lo;
  bool found = false;
  for (NodeId u = lo; u < hi && !found; ++u) {
    for (NodeId v = lo; v < hi && !found; ++v) {
      if (u != v && !cluster.g.HasEdge(u, v)) {
        from = u;
        to = v;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  UpdateBatch batch;
  batch.add_edges.push_back({from, to});
  ASSERT_TRUE(cluster.router->ApplyNativeUpdate(batch).ok());

  // Every shard moved to the same epoch — the barrier holds even for
  // shards that only saw the empty commit.
  const std::vector<uint64_t> after = cluster.router->shard_epochs();
  for (const uint64_t e : after) EXPECT_EQ(e, 1u);

  // The routed cluster now answers like a sharded oracle rebuilt over
  // the updated graph.
  DataGraph updated(0);
  for (NodeId v = 0; v < cluster.g.NumNodes(); ++v) {
    updated.AddNode(cluster.g.LabelOf(v));
  }
  for (NodeId u = 0; u < cluster.g.NumNodes(); ++u) {
    for (NodeId v : cluster.g.OutNeighbors(u)) updated.AddEdge(u, v);
  }
  updated.AddEdge(from, to);
  updated.Finalize();
  TestCluster updated_view;
  updated_view.g = std::move(updated);
  updated_view.art.map = cluster.art.map;
  updated_view.router = std::move(cluster.router);
  ExpectDifferential(updated_view, 77, 500);
  cluster.router = std::move(updated_view.router);

  // Structural mutations are rejected before any shard is touched.
  UpdateBatch add_nodes;
  add_nodes.add_nodes.push_back(5);
  EXPECT_EQ(cluster.router->ApplyNativeUpdate(add_nodes).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_FALSE(map.cross_edges.empty());
  UpdateBatch cross;
  cross.add_edges.push_back(
      {map.cross_edges[0].second, map.cross_edges[0].first});
  EXPECT_EQ(cluster.router->ApplyNativeUpdate(cross).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_FALSE(map.boundary.empty());
  UpdateBatch remove_boundary;
  remove_boundary.remove_nodes.push_back(map.boundary[0]);
  EXPECT_EQ(cluster.router->ApplyNativeUpdate(remove_boundary).code(),
            StatusCode::kFailedPrecondition);

  // And the epochs did not move under any rejected batch.
  const std::vector<uint64_t> still = cluster.router->shard_epochs();
  for (const uint64_t e : still) EXPECT_EQ(e, 1u);
}

}  // namespace
}  // namespace gtpq
