#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace gtpq {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  *ok = 7;
  EXPECT_EQ(ok.TakeValue(), 7);

  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto p = r.TakeValue();
  EXPECT_EQ(*p, 5);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(123);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, SampleDistinct) {
  Rng rng(11);
  auto sparse = rng.SampleDistinct(1000, 10);
  EXPECT_EQ(sparse.size(), 10u);
  EXPECT_EQ(std::set<size_t>(sparse.begin(), sparse.end()).size(), 10u);
  auto dense = rng.SampleDistinct(10, 8);
  EXPECT_EQ(dense.size(), 8u);
  auto clamped = rng.SampleDistinct(3, 99);
  EXPECT_EQ(clamped.size(), 3u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Split("a,,c", ',', /*skip_empty=*/false),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_TRUE(Split("", ',').empty());
}

TEST(StringUtilTest, JoinAndStrip) {
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_TRUE(StartsWith("gtpq-graph v1", "gtpq-"));
  EXPECT_FALSE(StartsWith("g", "gtpq"));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-9876543), "-9,876,543");
}

TEST(TimerTest, Monotone) {
  Timer t;
  double a = t.ElapsedMicros();
  double b = t.ElapsedMicros();
  EXPECT_GE(b, a);
  t.Restart();
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace gtpq
