// Parallel-vs-serial differential harness for intra-query parallelism
// (fixed seeds): the same GTEA engine — one per reachability spec, over
// random DAGs and cyclic digraphs — answers the same random query batch
// at parallelism 0 (serial reference), 2, and 8, and every QueryResult
// must be byte-identical, including under result_limit truncation
// (lane-ordered concatenation and index-addressed memo slots make the
// truncation deterministic, not merely the surviving set). Runs under
// the TSan CI job, where any cross-lane race on shared summaries,
// per-thread oracle stats, or memo slots becomes a report.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/gtea.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "reachability/factory.h"

namespace gtpq {
namespace {

std::vector<Gtpq> FuzzBatch(const DataGraph& g, size_t count,
                            uint64_t seed_base) {
  std::vector<Gtpq> queries;
  for (uint64_t seed = seed_base; queries.size() < count &&
                                  seed < seed_base + 20 * count;
       ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 4 + seed % 3;
    qo.pc_probability = 0.25;
    qo.predicate_fraction = 0.35;
    qo.output_fraction = 0.75;
    qo.disjunction_probability = 0.4;
    qo.negation_probability = 0.15;
    qo.seed = seed * 37 + 11;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (q.has_value()) queries.push_back(std::move(*q));
  }
  return queries;
}

class ParallelEvalTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelEvalTest, ByteIdenticalAcrossParallelismLevels) {
  const std::string& spec = GetParam();
  struct FuzzCase {
    bool cyclic;
    uint64_t graph_seed;
  };
  for (const FuzzCase& fuzz : {FuzzCase{false, 23}, FuzzCase{true, 71}}) {
    DataGraph g = fuzz.cyclic
                      ? RandomDigraph({.num_nodes = 60,
                                       .avg_degree = 2.0,
                                       .num_labels = 6,
                                       .seed = fuzz.graph_seed})
                      : RandomDag({.num_nodes = 80,
                                   .avg_degree = 2.2,
                                   .num_labels = 6,
                                   .locality = 1.0,
                                   .seed = fuzz.graph_seed});
    std::vector<Gtpq> queries = FuzzBatch(g, 12, fuzz.graph_seed * 131);
    ASSERT_GE(queries.size(), 6u) << "generator starved";

    std::shared_ptr<const ReachabilityOracle> idx(
        MakeReachabilityIndex(spec, g.graph()));
    ASSERT_NE(idx, nullptr) << spec;
    GteaEngine engine(g, idx);

    // result_limit 0 = full answers; 3 = the truncation path, where
    // byte-identity is the strongest claim (which tuples survive the
    // cap depends on enumeration order, which must not depend on
    // lanes).
    for (const size_t limit : {size_t{0}, size_t{3}}) {
      for (const Gtpq& q : queries) {
        GteaOptions serial;
        serial.result_limit = limit;
        serial.parallelism = 0;
        const QueryResult expected = engine.Evaluate(q, serial);
        const uint64_t expected_lookups = engine.stats().index_lookups;
        for (const size_t lanes : {size_t{2}, size_t{8}}) {
          GteaOptions parallel = serial;
          parallel.parallelism = lanes;
          const QueryResult got = engine.Evaluate(q, parallel);
          ASSERT_EQ(got, expected)
              << spec << " parallelism " << lanes << " limit " << limit
              << " graph seed " << fuzz.graph_seed
              << (fuzz.cyclic ? " (cyclic)" : " (dag)") << ":\n"
              << q.ToString(*g.attr_names());
          // Helper-lane oracle work must be folded back into the
          // caller's counters. Chunking a batch probe can re-pay a
          // backend's per-call setup, so the count may rise slightly
          // with lanes — but it can never FALL below the serial count;
          // a drop means a lane's deltas were dropped on the floor.
          // (Cached decorators are exempt — their hit pattern
          // legitimately shifts when probe order changes across
          // lanes.)
          if (spec.find("cached:") == std::string::npos) {
            EXPECT_GE(engine.stats().index_lookups, expected_lookups)
                << spec << " parallelism " << lanes;
          }
        }
      }
    }
  }
}

// Regression for the skip_singleton_upward x partitioning interaction:
// the singleton check must look at a query node's FULL candidate set,
// never at a lane's chunk (a chunk of size 1 is common once candidates
// are split 8 ways). If a lane chunk were skipped, upward refinement
// would silently keep unreachable candidates at high parallelism and
// answers would diverge from serial. The option must also stay a pure
// optimization: answers match with it on and off.
TEST(ParallelEvalSingletonSkipTest, GlobalSingletonDecisionUnderLanes) {
  for (const uint64_t graph_seed : {uint64_t{29}, uint64_t{101}}) {
    DataGraph g = RandomDag({.num_nodes = 80,
                             .avg_degree = 2.2,
                             .num_labels = 4,
                             .locality = 1.0,
                             .seed = graph_seed});
    std::vector<Gtpq> queries = FuzzBatch(g, 10, graph_seed * 211);
    ASSERT_GE(queries.size(), 5u) << "generator starved";
    GteaEngine engine(g);

    for (const Gtpq& q : queries) {
      GteaOptions base;
      base.skip_singleton_upward = false;
      base.parallelism = 0;
      const QueryResult expected = engine.Evaluate(q, base);
      for (const bool skip : {false, true}) {
        for (const size_t lanes : {size_t{0}, size_t{2}, size_t{8}}) {
          GteaOptions options;
          options.skip_singleton_upward = skip;
          options.parallelism = lanes;
          ASSERT_EQ(engine.Evaluate(q, options), expected)
              << "skip=" << skip << " parallelism=" << lanes
              << " graph seed " << graph_seed << ":\n"
              << q.ToString(*g.attr_names());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, ParallelEvalTest,
    ::testing::ValuesIn(AllReachabilitySpecs()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == '+' || c == '*') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gtpq
