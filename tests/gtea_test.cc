#include <gtest/gtest.h>

#include "baselines/naive.h"
#include "core/gtea.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "test_util.h"

namespace gtpq {
namespace {

using logic::Formula;
using testing::MakeGraph;
using testing::SmallDag;

// ---------- Handcrafted semantics checks ----------

TEST(GteaBasicTest, SingleNodeQuery) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));  // label b
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  auto result = engine.Evaluate(q);
  ASSERT_EQ(result.tuples.size(), 2u);
  EXPECT_EQ(result.tuples[0], (ResultTuple{1}));
  EXPECT_EQ(result.tuples[1], (ResultTuple{2}));
}

TEST(GteaBasicTest, SimpleAdPath) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));                       // b
  QNodeId c = b.AddBackbone(r, EdgeType::kDescendant, "c",
                            b.Label(4));                        // e
  b.MarkOutput(r);
  b.MarkOutput(c);
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  auto result = engine.Evaluate(q);
  // b-nodes: 1 (reaches e-nodes 6,7), 2 (reaches 7).
  auto expected = EvaluateBruteForce(g, q);
  EXPECT_EQ(result, expected);
  EXPECT_EQ(result.tuples.size(), 3u);
}

TEST(GteaBasicTest, DisjunctionPredicate) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));  // b
  QNodeId p1 = b.AddPredicate(r, EdgeType::kDescendant, "p1",
                              b.Label(5));  // f (only under node 1)
  QNodeId p2 = b.AddPredicate(r, EdgeType::kDescendant, "p2",
                              b.Label(3));  // d
  b.SetStructural(r, Formula::Or(Formula::Var(static_cast<int>(p1)),
                                 Formula::Var(static_cast<int>(p2))));
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  auto result = engine.Evaluate(q);
  EXPECT_EQ(result, EvaluateBruteForce(g, q));
  // Node 1 reaches f(9) and d(4); node 2 reaches d(8): both qualify.
  EXPECT_EQ(result.tuples.size(), 2u);
}

TEST(GteaBasicTest, NegationPredicate) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(2));  // c: nodes 3, 5
  QNodeId p = b.AddPredicate(r, EdgeType::kDescendant, "p",
                             b.Label(3));  // d: nodes 4, 8
  b.SetStructural(r, Formula::Not(Formula::Var(static_cast<int>(p))));
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  auto result = engine.Evaluate(q);
  EXPECT_EQ(result, EvaluateBruteForce(g, q));
  // c-node 3 reaches no d; c-node 5 reaches d(8).
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(result.tuples[0], (ResultTuple{3}));
}

TEST(GteaBasicTest, PcEdgeOnBackbone) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));  // b
  QNodeId c = b.AddBackbone(r, EdgeType::kChild, "c", b.Label(2));  // c
  b.MarkOutput(r);
  b.MarkOutput(c);
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  auto result = engine.Evaluate(q);
  EXPECT_EQ(result, EvaluateBruteForce(g, q));
  // Child pairs: (1,3) and (2,5).
  EXPECT_EQ(result.tuples.size(), 2u);
}

TEST(GteaBasicTest, PcEdgeOnNegatedPredicate) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(2));  // c: 3, 5
  QNodeId p = b.AddPredicate(r, EdgeType::kChild, "p", b.Label(4));  // e
  b.SetStructural(r, Formula::Not(Formula::Var(static_cast<int>(p))));
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  auto result = engine.Evaluate(q);
  EXPECT_EQ(result, EvaluateBruteForce(g, q));
  // 3 has child e(6); 5 has child e(7): both have an e-child -> none...
  // 3 -> 6 (e) yes; 5 -> 7 (e) yes. Expect empty.
  EXPECT_TRUE(result.tuples.empty());
}

TEST(GteaBasicTest, EmptyAnswerWhenLabelMissing) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));
  b.AddBackbone(r, EdgeType::kDescendant, "c", b.Label(77));
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  EXPECT_TRUE(engine.Evaluate(q).tuples.empty());
}

TEST(GteaBasicTest, OutputSubsetProjection) {
  DataGraph g = SmallDag();
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(0));  // a: node 0
  QNodeId m = b.AddBackbone(r, EdgeType::kDescendant, "m", b.Label(1));
  QNodeId l = b.AddBackbone(m, EdgeType::kDescendant, "l", b.Label(4));
  (void)l;
  b.MarkOutput(m);  // only the middle node is projected
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  auto result = engine.Evaluate(q);
  EXPECT_EQ(result, EvaluateBruteForce(g, q));
  // Both b-nodes reach an e-node; root exists; tuples are (1) and (2).
  EXPECT_EQ(result.tuples.size(), 2u);
}

TEST(GteaBasicTest, CyclicGraphSelfDescendant) {
  // 0 -> 1 <-> 2, query: a//a with both outputs.
  DataGraph g = MakeGraph(3, {7, 7, 7}, {{0, 1}, {1, 2}, {2, 1}});
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(7));
  QNodeId c = b.AddBackbone(r, EdgeType::kDescendant, "c", b.Label(7));
  b.MarkOutput(r);
  b.MarkOutput(c);
  Gtpq q = b.Build().TakeValue();
  GteaEngine engine(g);
  auto result = engine.Evaluate(q);
  EXPECT_EQ(result, EvaluateBruteForce(g, q));
  // 1 and 2 are mutually reachable (and self-reachable via the cycle).
  ResultTuple t11{1, 1};
  EXPECT_TRUE(std::find(result.tuples.begin(), result.tuples.end(), t11) !=
              result.tuples.end());
}

// ---------- Property sweep: GTEA == brute force ----------

struct SweepCase {
  const char* tag;
  size_t graph_nodes;
  double degree;
  bool cyclic;
  bool tree_shaped;
  QueryGenOptions qopts;
};

void PrintTo(const SweepCase& c, std::ostream* os) { *os << c.tag; }

class GteaEquivalence : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GteaEquivalence, MatchesBruteForce) {
  const SweepCase& c = GetParam();
  DataGraph g = [&]() {
    if (c.tree_shaped) {
      RandomTreeOptions o;
      o.num_nodes = c.graph_nodes;
      o.cross_edge_fraction = 0.25;
      o.num_labels = 6;
      o.seed = 1234;
      return RandomTreeWithCrossEdges(o);
    }
    if (c.cyclic) {
      RandomDigraphOptions o;
      o.num_nodes = c.graph_nodes;
      o.avg_degree = c.degree;
      o.num_labels = 6;
      o.seed = 99;
      return RandomDigraph(o);
    }
    RandomDagOptions o;
    o.num_nodes = c.graph_nodes;
    o.avg_degree = c.degree;
    o.num_labels = 6;
    o.seed = 7;
    return RandomDag(o);
  }();
  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  GteaEngine engine(g);
  int evaluated = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    QueryGenOptions qo = c.qopts;
    qo.seed = seed * 31 + 5;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    ++evaluated;
    auto expected = EvaluateBruteForce(g, tc, *q);
    auto actual = engine.Evaluate(*q);
    ASSERT_EQ(actual, expected)
        << "seed " << seed << "\nquery:\n"
        << q->ToString(*g.attr_names()) << "\nexpected "
        << expected.tuples.size() << " tuples, got "
        << actual.tuples.size();
  }
  EXPECT_GT(evaluated, 10) << "generator produced too few queries";
}

QueryGenOptions Conjunctive(size_t n, double pc) {
  QueryGenOptions o;
  o.num_nodes = n;
  o.pc_probability = pc;
  o.predicate_fraction = 0.3;
  o.output_fraction = 0.7;
  return o;
}

QueryGenOptions Logical(size_t n, double pc) {
  QueryGenOptions o = Conjunctive(n, pc);
  o.predicate_fraction = 0.5;
  o.disjunction_probability = 0.6;
  o.negation_probability = 0.3;
  return o;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GteaEquivalence,
    ::testing::Values(
        SweepCase{"dag_small_conj_ad", 40, 1.5, false, false,
                  Conjunctive(4, 0.0)},
        SweepCase{"dag_conj_ad", 70, 2.0, false, false,
                  Conjunctive(6, 0.0)},
        SweepCase{"dag_conj_pc", 70, 2.0, false, false,
                  Conjunctive(6, 0.6)},
        SweepCase{"dag_conj_mixed", 70, 2.5, false, false,
                  Conjunctive(7, 0.3)},
        SweepCase{"dag_logic_ad", 70, 2.0, false, false,
                  Logical(6, 0.0)},
        SweepCase{"dag_logic_pc", 70, 2.0, false, false, Logical(6, 0.5)},
        SweepCase{"dag_logic_large", 90, 2.0, false, false,
                  Logical(9, 0.25)},
        SweepCase{"cyclic_conj", 50, 2.0, true, false,
                  Conjunctive(5, 0.2)},
        SweepCase{"cyclic_logic", 50, 2.0, true, false, Logical(6, 0.3)},
        SweepCase{"tree_conj", 80, 0, false, true, Conjunctive(7, 0.4)},
        SweepCase{"tree_logic", 80, 0, false, true, Logical(7, 0.4)}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.tag;
    });

// ---------- Ablation options keep semantics ----------

TEST(GteaOptionsTest, AblationsPreserveResults) {
  RandomDagOptions o;
  o.num_nodes = 60;
  o.avg_degree = 2.0;
  o.num_labels = 5;
  o.seed = 21;
  DataGraph g = RandomDag(o);
  GteaEngine engine(g);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 6;
    qo.predicate_fraction = 0.4;
    qo.disjunction_probability = 0.5;
    qo.negation_probability = 0.2;
    qo.pc_probability = 0.3;
    qo.output_fraction = 0.8;
    qo.seed = seed;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    GteaOptions base;
    auto reference = engine.Evaluate(*q, base);

    GteaOptions no_up = base;
    no_up.upward_pruning = false;
    EXPECT_EQ(engine.Evaluate(*q, no_up), reference) << "seed " << seed;

    GteaOptions pairwise = base;
    pairwise.contour_matching_graph = false;
    EXPECT_EQ(engine.Evaluate(*q, pairwise), reference) << "seed " << seed;

    GteaOptions skip_singleton = base;
    skip_singleton.skip_singleton_upward = true;
    EXPECT_EQ(engine.Evaluate(*q, skip_singleton), reference)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace gtpq
