// Observability layer tests: the histogram merge property (K
// per-thread histograms merged bucket-for-bucket equal one histogram
// that saw every sample, with the quantile error bound asserted),
// striped-counter exactness under concurrent writers, Prometheus text
// exposition shape, the trace recorder ring, and slow-query-log
// worst-N eviction. The concurrency cases run in the TSan CI job.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace gtpq {
namespace obs {
namespace {

// ------------------------------------------------------------ Counter

TEST(CounterTest, ExactUnderConcurrentWriters) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------- Histogram

TEST(HistogramTest, BucketMappingIsMonotonicAndConsistent) {
  // Every sample must land in a bucket whose upper bound is >= the
  // sample and whose predecessor's upper bound is < the sample.
  size_t prev_index = 0;
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{15}, uint64_t{16}, uint64_t{17},
        uint64_t{31}, uint64_t{32}, uint64_t{100}, uint64_t{1000},
        uint64_t{123456}, uint64_t{1} << 40, uint64_t{1} << 62}) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kNumBuckets) << "value " << v;
    EXPECT_GE(Histogram::BucketUpperBound(index), v) << "value " << v;
    if (index > 0) {
      EXPECT_LT(Histogram::BucketUpperBound(index - 1), v)
          << "value " << v;
    }
    EXPECT_GE(index, prev_index) << "value " << v;
    prev_index = index;
  }
  // Exhaustive over a dense small range where off-by-ones would hide.
  for (uint64_t v = 0; v < 4096; ++v) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_GE(Histogram::BucketUpperBound(index), v) << "value " << v;
    if (index > 0) {
      ASSERT_LT(Histogram::BucketUpperBound(index - 1), v)
          << "value " << v;
    }
  }
}

TEST(HistogramTest, MergeOfPerThreadHistogramsEqualsOneHistogram) {
  // The property the scrape path relies on: K per-thread histograms,
  // merged by plain bucket addition, are indistinguishable from one
  // histogram that recorded every sample.
  constexpr int kThreads = 7;
  constexpr int kPerThread = 5000;
  std::vector<Histogram> per_thread(kThreads);
  Histogram combined;

  // Deterministic log-uniform-ish samples spanning many majors.
  std::vector<std::vector<uint64_t>> samples(kThreads);
  std::mt19937_64 rng(42);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const int shift = static_cast<int>(rng() % 40);
      samples[t].push_back(rng() % (uint64_t{2} << shift));
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t v : samples[t]) per_thread[t].Record(v);
    });
  }
  for (auto& th : threads) th.join();
  std::vector<uint64_t> all;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t v : samples[t]) {
      combined.Record(v);
      all.push_back(v);
    }
  }

  Histogram::Snapshot merged = per_thread[0].Snap();
  for (int t = 1; t < kThreads; ++t) {
    merged.Merge(per_thread[t].Snap());
  }
  const Histogram::Snapshot expected = combined.Snap();
  EXPECT_EQ(merged.counts, expected.counts);  // exact, bucket for bucket
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.TotalCount(),
            static_cast<uint64_t>(kThreads) * kPerThread);

  // Quantile error bound: the bucket edge returned for q must be within
  // 1/16 relative error of the true nearest-rank sample.
  std::sort(all.begin(), all.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double estimate = merged.Quantile(q);
    size_t rank = static_cast<size_t>(q * static_cast<double>(all.size()));
    if (rank >= all.size()) rank = all.size() - 1;
    const double truth = static_cast<double>(all[rank]);
    EXPECT_GE(estimate, truth) << "q=" << q;  // upper edge bounds above
    EXPECT_LE(estimate, truth + truth / 16.0 + 1.0) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.Snap().Quantile(0.5), 0.0);  // empty
  h.Record(7);
  const Histogram::Snapshot one = h.Snap();
  EXPECT_EQ(one.Quantile(0.0), 7.0);
  EXPECT_EQ(one.Quantile(1.0), 7.0);
}

// ----------------------------------------------------------- Registry

TEST(RegistryTest, GetReturnsStablePointers) {
  Registry& registry = Registry::Global();
  Counter* a = registry.GetCounter("gtpq_test_stable_total");
  Counter* b = registry.GetCounter("gtpq_test_stable_total");
  EXPECT_EQ(a, b);
  EXPECT_NE(static_cast<void*>(registry.GetGauge("gtpq_test_stable_total")),
            static_cast<void*>(a));  // separate namespaces per kind
}

TEST(RegistryTest, PrometheusRenderIsWellFormed) {
  Registry& registry = Registry::Global();
  registry.GetCounter("gtpq_test_render_total")->Add(3);
  registry.GetGauge("gtpq_test_render_depth")->Set(-2);
  Histogram* h = registry.GetHistogram("gtpq_test_render_us");
  h->Record(5);
  h->Record(500);
  registry.GetCounter("gtpq_test_render_labeled_total{shard=\"1\"}")
      ->Add(7);

  const std::string text = registry.RenderPrometheus();

  // Every non-comment line is `name[{labels}] value`; every series is
  // preceded by exactly one TYPE line for its family.
  std::istringstream lines(text);
  std::string line;
  size_t samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line);
      std::string hash, type, family, kind;
      fields >> hash >> type >> family >> kind;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram")
          << line;
      continue;
    }
    ASSERT_NE(line[0], '#') << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(end, value.c_str() + value.size()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);

  EXPECT_NE(text.find("# TYPE gtpq_test_render_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_total 3"), std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gtpq_test_render_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_us_sum 505"), std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_us_p50"), std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_labeled_total{shard=\"1\"} 7"),
            std::string::npos);
  // The labeled series' TYPE line names the bare family, not the
  // label block.
  EXPECT_NE(
      text.find("# TYPE gtpq_test_render_labeled_total counter"),
      std::string::npos);
  EXPECT_EQ(text.find("# TYPE gtpq_test_render_labeled_total{"),
            std::string::npos);
}

// -------------------------------------------------------------- Trace

TEST(TraceTest, ContextIsScopedPerThread) {
  EXPECT_FALSE(CurrentTrace().active());
  {
    ScopedTraceContext outer({41, 1});
    EXPECT_EQ(CurrentTrace().trace_id, 41u);
    {
      ScopedTraceContext inner({42, 2});
      EXPECT_EQ(CurrentTrace().trace_id, 42u);
      std::thread([] {
        // A fresh thread never inherits another thread's context.
        EXPECT_FALSE(CurrentTrace().active());
      }).join();
    }
    EXPECT_EQ(CurrentTrace().trace_id, 41u);
  }
  EXPECT_FALSE(CurrentTrace().active());
}

TEST(TraceTest, RecorderKeepsTraceSpansAndDropsUntraced) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  const uint64_t trace = NewTraceId();
  ASSERT_NE(trace, 0u);
  const uint64_t root = recorder.Record(trace, 0, "root", 10.0, 5.0);
  ASSERT_NE(root, 0u);
  recorder.Record(trace, root, "child", 11.0, 1.0);
  EXPECT_EQ(recorder.Record(0, 0, "untraced", 0.0, 1.0), 0u);  // no-op

  const std::vector<Span> spans = recorder.SpansForTrace(trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent_span, root);
  EXPECT_EQ(recorder.Spans().size(), 2u);

  const std::string json = recorder.RenderChromeTrace();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  recorder.Clear();
}

TEST(TraceTest, RingOverwritesOldestBeyondCapacity) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  const uint64_t trace = NewTraceId();
  const size_t n = TraceRecorder::kCapacity + 10;
  for (size_t i = 0; i < n; ++i) {
    recorder.Record(trace, 0, "span" + std::to_string(i),
                    static_cast<double>(i), 1.0);
  }
  const std::vector<Span> spans = recorder.Spans();
  ASSERT_EQ(spans.size(), TraceRecorder::kCapacity);
  // Oldest first, and the 10 oldest spans fell off the front.
  EXPECT_EQ(spans.front().name, "span10");
  EXPECT_EQ(spans.back().name, "span" + std::to_string(n - 1));
  EXPECT_GE(recorder.total_recorded(), n);
  recorder.Clear();
}

// ------------------------------------------------------------ Slowlog

TEST(SlowlogTest, KeepsWorstNWorstFirst) {
  SlowQueryLog log;
  EXPECT_TRUE(log.WouldAdmit(0.001));  // everything admits while empty
  for (size_t i = 0; i < SlowQueryLog::kCapacity + 20; ++i) {
    SlowQueryEntry entry;
    entry.query = "q" + std::to_string(i);
    entry.wall_ms = static_cast<double>(i);
    log.Record(std::move(entry));
  }
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), SlowQueryLog::kCapacity);
  // The worst kCapacity wall times survive, sorted worst first.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].wall_ms,
              static_cast<double>(SlowQueryLog::kCapacity + 20 - 1 - i));
  }
  // A query faster than the floor is refused by the pre-check.
  EXPECT_FALSE(log.WouldAdmit(1.0));
  EXPECT_TRUE(log.WouldAdmit(1e9));

  const std::string rendered = log.Render();
  EXPECT_NE(rendered.find("slow query log"), std::string::npos);
  EXPECT_NE(rendered.find("wall_ms"), std::string::npos);

  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_TRUE(log.WouldAdmit(0.001));
}

TEST(SlowlogTest, RecordBelowFloorIsDroppedUnderLockToo) {
  SlowQueryLog log;
  for (size_t i = 0; i < SlowQueryLog::kCapacity; ++i) {
    SlowQueryEntry entry;
    entry.wall_ms = 100.0 + static_cast<double>(i);
    log.Record(std::move(entry));
  }
  // Bypass WouldAdmit and push a too-fast entry straight at Record —
  // the under-lock re-check must drop it.
  SlowQueryEntry fast;
  fast.wall_ms = 1.0;
  log.Record(std::move(fast));
  for (const auto& entry : log.Entries()) {
    EXPECT_GE(entry.wall_ms, 100.0);
  }
}

}  // namespace
}  // namespace obs
}  // namespace gtpq
