// Observability layer tests: the histogram merge property (K
// per-thread histograms merged bucket-for-bucket equal one histogram
// that saw every sample, with the quantile error bound asserted),
// striped-counter exactness under concurrent writers, Prometheus text
// exposition shape, the trace recorder ring, and slow-query-log
// worst-N eviction. The concurrency cases run in the TSan CI job.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/federation.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace gtpq {
namespace obs {
namespace {

// ------------------------------------------------------------ Counter

TEST(CounterTest, ExactUnderConcurrentWriters) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------- Histogram

TEST(HistogramTest, BucketMappingIsMonotonicAndConsistent) {
  // Every sample must land in a bucket whose upper bound is >= the
  // sample and whose predecessor's upper bound is < the sample.
  size_t prev_index = 0;
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{15}, uint64_t{16}, uint64_t{17},
        uint64_t{31}, uint64_t{32}, uint64_t{100}, uint64_t{1000},
        uint64_t{123456}, uint64_t{1} << 40, uint64_t{1} << 62}) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kNumBuckets) << "value " << v;
    EXPECT_GE(Histogram::BucketUpperBound(index), v) << "value " << v;
    if (index > 0) {
      EXPECT_LT(Histogram::BucketUpperBound(index - 1), v)
          << "value " << v;
    }
    EXPECT_GE(index, prev_index) << "value " << v;
    prev_index = index;
  }
  // Exhaustive over a dense small range where off-by-ones would hide.
  for (uint64_t v = 0; v < 4096; ++v) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_GE(Histogram::BucketUpperBound(index), v) << "value " << v;
    if (index > 0) {
      ASSERT_LT(Histogram::BucketUpperBound(index - 1), v)
          << "value " << v;
    }
  }
}

TEST(HistogramTest, MergeOfPerThreadHistogramsEqualsOneHistogram) {
  // The property the scrape path relies on: K per-thread histograms,
  // merged by plain bucket addition, are indistinguishable from one
  // histogram that recorded every sample.
  constexpr int kThreads = 7;
  constexpr int kPerThread = 5000;
  std::vector<Histogram> per_thread(kThreads);
  Histogram combined;

  // Deterministic log-uniform-ish samples spanning many majors.
  std::vector<std::vector<uint64_t>> samples(kThreads);
  std::mt19937_64 rng(42);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const int shift = static_cast<int>(rng() % 40);
      samples[t].push_back(rng() % (uint64_t{2} << shift));
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t v : samples[t]) per_thread[t].Record(v);
    });
  }
  for (auto& th : threads) th.join();
  std::vector<uint64_t> all;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t v : samples[t]) {
      combined.Record(v);
      all.push_back(v);
    }
  }

  Histogram::Snapshot merged = per_thread[0].Snap();
  for (int t = 1; t < kThreads; ++t) {
    merged.Merge(per_thread[t].Snap());
  }
  const Histogram::Snapshot expected = combined.Snap();
  EXPECT_EQ(merged.counts, expected.counts);  // exact, bucket for bucket
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.TotalCount(),
            static_cast<uint64_t>(kThreads) * kPerThread);

  // Quantile error bound: the bucket edge returned for q must be within
  // 1/16 relative error of the true nearest-rank sample.
  std::sort(all.begin(), all.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double estimate = merged.Quantile(q);
    size_t rank = static_cast<size_t>(q * static_cast<double>(all.size()));
    if (rank >= all.size()) rank = all.size() - 1;
    const double truth = static_cast<double>(all[rank]);
    EXPECT_GE(estimate, truth) << "q=" << q;  // upper edge bounds above
    EXPECT_LE(estimate, truth + truth / 16.0 + 1.0) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.Snap().Quantile(0.5), 0.0);  // empty
  h.Record(7);
  const Histogram::Snapshot one = h.Snap();
  EXPECT_EQ(one.Quantile(0.0), 7.0);
  EXPECT_EQ(one.Quantile(1.0), 7.0);
}

// ----------------------------------------------------------- Registry

TEST(RegistryTest, GetReturnsStablePointers) {
  Registry& registry = Registry::Global();
  Counter* a = registry.GetCounter("gtpq_test_stable_total");
  Counter* b = registry.GetCounter("gtpq_test_stable_total");
  EXPECT_EQ(a, b);
  EXPECT_NE(static_cast<void*>(registry.GetGauge("gtpq_test_stable_total")),
            static_cast<void*>(a));  // separate namespaces per kind
}

TEST(RegistryTest, PrometheusRenderIsWellFormed) {
  Registry& registry = Registry::Global();
  registry.GetCounter("gtpq_test_render_total")->Add(3);
  registry.GetGauge("gtpq_test_render_depth")->Set(-2);
  Histogram* h = registry.GetHistogram("gtpq_test_render_us");
  h->Record(5);
  h->Record(500);
  registry.GetCounter("gtpq_test_render_labeled_total{shard=\"1\"}")
      ->Add(7);

  const std::string text = registry.RenderPrometheus();

  // Every non-comment line is `name[{labels}] value`; every series is
  // preceded by exactly one TYPE line for its family.
  std::istringstream lines(text);
  std::string line;
  size_t samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line);
      std::string hash, type, family, kind;
      fields >> hash >> type >> family >> kind;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram")
          << line;
      continue;
    }
    ASSERT_NE(line[0], '#') << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(end, value.c_str() + value.size()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);

  EXPECT_NE(text.find("# TYPE gtpq_test_render_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_total 3"), std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gtpq_test_render_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_us_sum 505"), std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_us_p50"), std::string::npos);
  EXPECT_NE(text.find("gtpq_test_render_labeled_total{shard=\"1\"} 7"),
            std::string::npos);
  // The labeled series' TYPE line names the bare family, not the
  // label block.
  EXPECT_NE(
      text.find("# TYPE gtpq_test_render_labeled_total counter"),
      std::string::npos);
  EXPECT_EQ(text.find("# TYPE gtpq_test_render_labeled_total{"),
            std::string::npos);
}

TEST(RegistryTest, LabelValuesEscapeOnRender) {
  // A label value with every character the text format escapes:
  // backslash, double quote, newline.
  const std::string name = LabeledName(
      "gtpq_test_escape_total", {{"path", "a\\b\"c\nd"}});
  EXPECT_EQ(name,
            "gtpq_test_escape_total{path=\"a\\\\b\\\"c\\nd\"}");
  EXPECT_TRUE(IsValidSeriesName(name));
  Registry& registry = Registry::Global();
  registry.GetCounter(name)->Add(2);
  const std::string text = registry.RenderPrometheus();
  // Rendered escaped — one line, no raw newline or bare quote breaks
  // the exposition grammar.
  EXPECT_NE(
      text.find(
          "gtpq_test_escape_total{path=\"a\\\\b\\\"c\\nd\"} 2"),
      std::string::npos);
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("gtpq_test_escape_total", 0) == 0) {
      EXPECT_NE(line.find("\\n"), std::string::npos) << line;
    }
  }
}

TEST(RegistryTest, SeriesNameValidation) {
  EXPECT_TRUE(IsValidSeriesName("gtpq_queries_total"));
  EXPECT_TRUE(IsValidSeriesName("gtpq:aggregated_total"));
  EXPECT_TRUE(IsValidSeriesName("gtpq_x_total{shard=\"1\"}"));
  EXPECT_TRUE(
      IsValidSeriesName("gtpq_x_total{a=\"1\",b=\"two words\"}"));
  EXPECT_TRUE(IsValidSeriesName(
      LabeledName("gtpq_x_total", {{"v", "quote\"and\\slash"}})));

  EXPECT_FALSE(IsValidSeriesName(""));
  EXPECT_FALSE(IsValidSeriesName("1starts_with_digit"));
  EXPECT_FALSE(IsValidSeriesName("has space"));
  EXPECT_FALSE(IsValidSeriesName("gtpq_x_total{"));            // unclosed
  EXPECT_FALSE(IsValidSeriesName("gtpq_x_total{shard=1}"));    // unquoted
  EXPECT_FALSE(IsValidSeriesName("gtpq_x_total{shard=\"1\""));  // no brace
  EXPECT_FALSE(IsValidSeriesName("gtpq_x_total{shard=\"1}"));  // unclosed "
  EXPECT_FALSE(
      IsValidSeriesName("gtpq_x_total{a=\"1\"b=\"2\"}"));  // no comma
  EXPECT_FALSE(IsValidSeriesName("gtpq_x_total{a=\"1\",}"));  // trailing ,
  EXPECT_FALSE(IsValidSeriesName("gtpq_x_total{=\"1\"}"));    // empty key
}

// --------------------------------------------------------- Federation

TEST(FederationTest, SnapshotCodecRoundTripsEverySeriesType) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("gtpq_a_total", 7);
  snapshot.counters.emplace_back("gtpq_b_total{shard=\"2\"}", 0);
  snapshot.gauges.emplace_back("gtpq_depth", int64_t{-3});
  snapshot.gauges.emplace_back("gtpq_epoch", int64_t{12});
  Histogram h;
  h.Record(0);
  h.Record(5);
  h.Record(1000);
  h.Record(1ull << 40);
  snapshot.histograms.emplace_back("gtpq_lat_us", h.Snap());
  snapshot.histograms.emplace_back("gtpq_empty_us",
                                   Histogram().Snap());

  const std::string bytes = EncodeMetricsSnapshot(snapshot);
  MetricsSnapshot out;
  ASSERT_TRUE(DecodeMetricsSnapshot(bytes, &out).ok());
  ASSERT_EQ(out.counters.size(), 2u);
  EXPECT_EQ(out.counters[0].first, "gtpq_a_total");
  EXPECT_EQ(out.counters[0].second, 7u);
  EXPECT_EQ(out.counters[1].first, "gtpq_b_total{shard=\"2\"}");
  ASSERT_EQ(out.gauges.size(), 2u);
  EXPECT_EQ(out.gauges[0].second, -3);  // negative survives the u64 trip
  ASSERT_EQ(out.histograms.size(), 2u);
  EXPECT_EQ(out.histograms[0].second.counts,
            snapshot.histograms[0].second.counts);
  EXPECT_EQ(out.histograms[0].second.sum,
            snapshot.histograms[0].second.sum);
  EXPECT_EQ(out.histograms[1].second.TotalCount(), 0u);
}

TEST(FederationTest, SnapshotCodecRejectsTruncationAndCorruption) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("gtpq_a_total", 1);
  Histogram h;
  h.Record(42);
  snapshot.histograms.emplace_back("gtpq_lat_us", h.Snap());
  const std::string bytes = EncodeMetricsSnapshot(snapshot);

  // Truncation at EVERY byte boundary is rejected (the trailing CRC
  // guarantees no prefix of a valid encoding validates).
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    MetricsSnapshot out;
    EXPECT_FALSE(
        DecodeMetricsSnapshot(bytes.substr(0, cut), &out).ok())
        << "prefix of " << cut << " bytes decoded";
  }
  // So is any single bit flip.
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    MetricsSnapshot out;
    EXPECT_FALSE(DecodeMetricsSnapshot(corrupt, &out).ok())
        << "bit flip at byte " << i << " decoded";
  }
}

TEST(FederationTest, ShardLabelInjection) {
  EXPECT_EQ(WithShardLabel("gtpq_queries_total", "2"),
            "gtpq_queries_total{shard=\"2\"}");
  // Injected FIRST into an existing label block.
  EXPECT_EQ(WithShardLabel("gtpq_x_total{a=\"1\"}", "0"),
            "gtpq_x_total{shard=\"0\",a=\"1\"}");
  // Already shard-labeled: pass through unchanged (no duplicate key).
  EXPECT_EQ(WithShardLabel("gtpq_probes_total{shard=\"1\"}", "9"),
            "gtpq_probes_total{shard=\"1\"}");
  EXPECT_EQ(WithShardLabel("gtpq_x_total{a=\"1\",shard=\"3\"}", "9"),
            "gtpq_x_total{a=\"1\",shard=\"3\"}");
  // The label value is escaped on the way in.
  EXPECT_EQ(WithShardLabel("gtpq_x_total", "a\"b"),
            "gtpq_x_total{shard=\"a\\\"b\"}");
}

TEST(FederationTest, MergedShardSnapshotsEqualOneProcess) {
  // The tentpole property: K member snapshots merged through
  // BuildFederatedSnapshot produce unlabeled aggregates identical to
  // one process that recorded every sample.
  std::mt19937_64 rng(77);
  Histogram all;  // the would-be single process
  uint64_t all_queries = 0;
  std::vector<MemberSnapshot> members;
  for (size_t shard = 0; shard < 3; ++shard) {
    Histogram local;
    uint64_t queries = 0;
    const size_t n = 200 + 100 * shard;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t sample = rng() % (1ull << (8 + 8 * shard));
      local.Record(sample);
      all.Record(sample);
      ++queries;
    }
    all_queries += queries;
    MetricsSnapshot member;
    member.counters.emplace_back("gtpq_queries_total", queries);
    member.counters.emplace_back(
        "gtpq_already_labeled_total{shard=\"x\"}", 5);
    member.gauges.emplace_back("gtpq_epoch", int64_t(shard));
    member.histograms.emplace_back("gtpq_query_latency_us",
                                   local.Snap());
    members.push_back({std::to_string(shard), std::move(member)});
  }

  MetricsSnapshot self;
  self.counters.emplace_back("gtpq_connections_total", 9);
  const MetricsSnapshot merged = BuildFederatedSnapshot(self, members);

  uint64_t agg_queries = 0, labeled_sum = 0;
  bool saw_self = false, saw_double_label = false;
  for (const auto& [name, value] : merged.counters) {
    if (name == "gtpq_queries_total") agg_queries = value;
    if (name == "gtpq_connections_total{shard=\"router\"}") {
      saw_self = true;
      EXPECT_EQ(value, 9u);
    }
    for (size_t shard = 0; shard < 3; ++shard) {
      if (name == "gtpq_queries_total{shard=\"" +
                      std::to_string(shard) + "\"}") {
        labeled_sum += value;
      }
    }
    if (name.find("shard=\"x\"") != std::string::npos) {
      // Member series that already carried shard= must NOT get a second
      // shard label or an unlabeled aggregate.
      EXPECT_EQ(name, "gtpq_already_labeled_total{shard=\"x\"}");
      saw_double_label |=
          name.find("shard=\"") != name.rfind("shard=\"");
    }
  }
  EXPECT_TRUE(saw_self);
  EXPECT_FALSE(saw_double_label);
  EXPECT_EQ(agg_queries, all_queries);
  EXPECT_EQ(labeled_sum, all_queries);
  for (const auto& [name, value] : merged.counters) {
    // No unlabeled aggregate for the pre-labeled member series — that
    // would double count it once per shard.
    EXPECT_NE(name, "gtpq_already_labeled_total");
  }

  // Histogram aggregate: bucket-for-bucket equal to the single-process
  // histogram, so quantiles and _count agree exactly.
  const Histogram::Snapshot want = all.Snap();
  bool found = false;
  for (const auto& [name, snap] : merged.histograms) {
    if (name != "gtpq_query_latency_us") continue;
    found = true;
    EXPECT_EQ(snap.counts, want.counts);
    EXPECT_EQ(snap.sum, want.sum);
    EXPECT_EQ(snap.TotalCount(), all_queries);
    EXPECT_EQ(snap.Quantile(0.5), want.Quantile(0.5));
  }
  EXPECT_TRUE(found);
  // Gauges never aggregate: no unlabeled gtpq_epoch; per-shard copies
  // keep their instantaneous values.
  int epoch_gauges = 0;
  for (const auto& [name, value] : merged.gauges) {
    EXPECT_NE(name, "gtpq_epoch");
    if (name.rfind("gtpq_epoch{", 0) == 0) ++epoch_gauges;
  }
  EXPECT_EQ(epoch_gauges, 3);

  // The federated snapshot also renders as valid exposition and
  // round-trips the wire codec (the router re-exports what it merged).
  MetricsSnapshot decoded;
  ASSERT_TRUE(
      DecodeMetricsSnapshot(EncodeMetricsSnapshot(merged), &decoded)
          .ok());
  const std::string text = RenderPrometheusSnapshot(decoded);
  EXPECT_NE(text.find("gtpq_queries_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gtpq_query_latency_us_count " +
                      std::to_string(all_queries)),
            std::string::npos);
}

TEST(FederationTest, SpanCodecRoundTripsAndRejectsTruncation) {
  std::vector<Span> spans;
  Span a;
  a.trace_id = 0xdeadbeefcafe1234ull;
  a.span_id = 0x1111;
  a.parent_span = 0;
  a.name = "route query";
  a.start_us = 10.5;
  a.dur_us = 250.25;
  a.tid = 3;
  Span b;
  b.trace_id = a.trace_id;
  b.span_id = 0x2222;
  b.parent_span = 0x1111;
  b.name = "probe shard=1";
  b.start_us = 12;
  b.dur_us = 80;
  spans.push_back(a);
  spans.push_back(b);

  const std::string bytes = EncodeSpans(spans);
  std::vector<Span> out;
  ASSERT_TRUE(DecodeSpans(bytes, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].trace_id, a.trace_id);
  EXPECT_EQ(out[0].span_id, a.span_id);
  EXPECT_EQ(out[0].name, "route query");
  EXPECT_EQ(out[0].start_us, 10.5);  // bit-exact via bit_cast framing
  EXPECT_EQ(out[0].dur_us, 250.25);
  EXPECT_EQ(out[0].tid, 3u);
  EXPECT_EQ(out[1].parent_span, 0x1111u);

  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<Span> rejected;
    EXPECT_FALSE(DecodeSpans(bytes.substr(0, cut), &rejected).ok())
        << "prefix of " << cut << " bytes decoded";
  }
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x01;
  std::vector<Span> rejected;
  EXPECT_FALSE(DecodeSpans(corrupt, &rejected).ok());

  // Empty dumps are legal (shard with no matching spans).
  std::vector<Span> none;
  ASSERT_TRUE(DecodeSpans(EncodeSpans({}), &none).ok());
  EXPECT_TRUE(none.empty());
}

TEST(FederationTest, MultiProcessChromeTraceStitching) {
  const uint64_t trace_id = 0xabc;
  std::vector<ProcessSpans> processes;
  ProcessSpans router;
  router.process_name = "router";
  router.pid = 1;
  Span root;
  root.trace_id = trace_id;
  root.span_id = 0x10;
  root.name = "route query";
  root.dur_us = 100;
  router.spans.push_back(root);
  ProcessSpans shard;
  shard.process_name = "shard 0 (127.0.0.1:7501)";
  shard.pid = 2;
  Span child;
  child.trace_id = trace_id;
  child.span_id = 0x20;
  child.parent_span = 0x10;  // crossed the wire with the request
  child.name = "serve query";
  child.dur_us = 60;
  shard.spans.push_back(child);
  processes.push_back(router);
  processes.push_back(shard);

  const std::string json = RenderChromeTrace(processes);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // One process_name metadata event per process, with its pid.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard 0 (127.0.0.1:7501)\""),
            std::string::npos);
  // Span events carry their owning pid so the viewer draws two tracks.
  EXPECT_NE(json.find("\"name\":\"route query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"serve query\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // The cross-process parent link survives into the event args.
  const size_t child_pos = json.find("\"name\":\"serve query\"");
  ASSERT_NE(child_pos, std::string::npos);
  const size_t obj_start = json.rfind('{', child_pos);
  const size_t obj_end = json.find('}', child_pos);
  const std::string child_event =
      json.substr(obj_start, obj_end - obj_start + 1);
  EXPECT_NE(child_event.find("\"parent_span\":\"10\""),
            std::string::npos)
      << child_event;
}

// -------------------------------------------------------------- Trace

TEST(TraceTest, ContextIsScopedPerThread) {
  EXPECT_FALSE(CurrentTrace().active());
  {
    ScopedTraceContext outer({41, 1});
    EXPECT_EQ(CurrentTrace().trace_id, 41u);
    {
      ScopedTraceContext inner({42, 2});
      EXPECT_EQ(CurrentTrace().trace_id, 42u);
      std::thread([] {
        // A fresh thread never inherits another thread's context.
        EXPECT_FALSE(CurrentTrace().active());
      }).join();
    }
    EXPECT_EQ(CurrentTrace().trace_id, 41u);
  }
  EXPECT_FALSE(CurrentTrace().active());
}

TEST(TraceTest, RecorderKeepsTraceSpansAndDropsUntraced) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  const uint64_t trace = NewTraceId();
  ASSERT_NE(trace, 0u);
  const uint64_t root = recorder.Record(trace, 0, "root", 10.0, 5.0);
  ASSERT_NE(root, 0u);
  recorder.Record(trace, root, "child", 11.0, 1.0);
  EXPECT_EQ(recorder.Record(0, 0, "untraced", 0.0, 1.0), 0u);  // no-op

  const std::vector<Span> spans = recorder.SpansForTrace(trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent_span, root);
  EXPECT_EQ(recorder.Spans().size(), 2u);

  const std::string json = recorder.RenderChromeTrace();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  recorder.Clear();
}

TEST(TraceTest, RingOverwritesOldestBeyondCapacity) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  const uint64_t trace = NewTraceId();
  const size_t n = TraceRecorder::kCapacity + 10;
  for (size_t i = 0; i < n; ++i) {
    recorder.Record(trace, 0, "span" + std::to_string(i),
                    static_cast<double>(i), 1.0);
  }
  const std::vector<Span> spans = recorder.Spans();
  ASSERT_EQ(spans.size(), TraceRecorder::kCapacity);
  // Oldest first, and the 10 oldest spans fell off the front.
  EXPECT_EQ(spans.front().name, "span10");
  EXPECT_EQ(spans.back().name, "span" + std::to_string(n - 1));
  EXPECT_GE(recorder.total_recorded(), n);
  recorder.Clear();
}

// ------------------------------------------------------------ Slowlog

TEST(SlowlogTest, KeepsWorstNWorstFirst) {
  SlowQueryLog log;
  EXPECT_TRUE(log.WouldAdmit(0.001));  // everything admits while empty
  for (size_t i = 0; i < SlowQueryLog::kCapacity + 20; ++i) {
    SlowQueryEntry entry;
    entry.query = "q" + std::to_string(i);
    entry.wall_ms = static_cast<double>(i);
    log.Record(std::move(entry));
  }
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), SlowQueryLog::kCapacity);
  // The worst kCapacity wall times survive, sorted worst first.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].wall_ms,
              static_cast<double>(SlowQueryLog::kCapacity + 20 - 1 - i));
  }
  // A query faster than the floor is refused by the pre-check.
  EXPECT_FALSE(log.WouldAdmit(1.0));
  EXPECT_TRUE(log.WouldAdmit(1e9));

  const std::string rendered = log.Render();
  EXPECT_NE(rendered.find("slow query log"), std::string::npos);
  EXPECT_NE(rendered.find("wall_ms"), std::string::npos);

  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_TRUE(log.WouldAdmit(0.001));
}

TEST(SlowlogTest, RecordBelowFloorIsDroppedUnderLockToo) {
  SlowQueryLog log;
  for (size_t i = 0; i < SlowQueryLog::kCapacity; ++i) {
    SlowQueryEntry entry;
    entry.wall_ms = 100.0 + static_cast<double>(i);
    log.Record(std::move(entry));
  }
  // Bypass WouldAdmit and push a too-fast entry straight at Record —
  // the under-lock re-check must drop it.
  SlowQueryEntry fast;
  fast.wall_ms = 1.0;
  log.Record(std::move(fast));
  for (const auto& entry : log.Entries()) {
    EXPECT_GE(entry.wall_ms, 100.0);
  }
}

}  // namespace
}  // namespace obs
}  // namespace gtpq
