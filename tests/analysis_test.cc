#include <gtest/gtest.h>

#include "baselines/naive.h"
#include "core/analysis.h"
#include "core/gtea.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "test_util.h"

namespace gtpq {
namespace {

using logic::Formula;
using logic::FormulaRef;

// Labels used by the Fig. 4 fixtures.
constexpr int64_t kA = 1, kB = 2, kC = 3, kE = 4, kF = 5, kG = 6;

// Builds the paper's Q1/Q2 of Fig. 4 (modulo concrete labels):
//   u1(A, root) -- fs(u1) given by `root_fs_negated` (¬p_u2 or p_u2)
//     u2(B, predicate; AD or PC per `u2_pc`) -- fs(u2) = p_u4
//       u4(C, predicate, AD)
//     u3(G, backbone, AD, output) -- fs(u3) = (p5 & p6) | (!p5 & p6)
//       u5(E, predicate, AD) -- fs(u5) = p_u8      (not independently
//       u8(F, predicate, AD)                        constraint)
//       u6(B, predicate, AD) -- fs(u6) = p_u7
//         u7(C, predicate, AD)
struct Fig4Fixture {
  Gtpq Build(bool u2_pc, bool root_fs_negated) {
    QueryBuilder b(names);
    QNodeId u1 = b.AddRoot("u1", AttributePredicate::LabelEquals(
                                     names->label_attr(), kA));
    QNodeId u2 = b.AddPredicate(
        u1, u2_pc ? EdgeType::kChild : EdgeType::kDescendant, "u2",
        AttributePredicate::LabelEquals(names->label_attr(), kB));
    QNodeId u3 = b.AddBackbone(
        u1, EdgeType::kDescendant, "u3",
        AttributePredicate::LabelEquals(names->label_attr(), kG));
    QNodeId u4 = b.AddPredicate(
        u2, EdgeType::kDescendant, "u4",
        AttributePredicate::LabelEquals(names->label_attr(), kC));
    QNodeId u5 = b.AddPredicate(
        u3, EdgeType::kDescendant, "u5",
        AttributePredicate::LabelEquals(names->label_attr(), kE));
    QNodeId u8 = b.AddPredicate(
        u5, EdgeType::kDescendant, "u8",
        AttributePredicate::LabelEquals(names->label_attr(), kF));
    QNodeId u6 = b.AddPredicate(
        u3, EdgeType::kDescendant, "u6",
        AttributePredicate::LabelEquals(names->label_attr(), kB));
    QNodeId u7 = b.AddPredicate(
        u6, EdgeType::kDescendant, "u7",
        AttributePredicate::LabelEquals(names->label_attr(), kC));
    auto var = [](QNodeId u) { return Formula::Var(static_cast<int>(u)); };
    b.SetStructural(u1, root_fs_negated ? Formula::Not(var(u2)) : var(u2));
    b.SetStructural(u2, var(u4));
    b.SetStructural(u5, var(u8));
    b.SetStructural(u6, var(u7));
    b.SetStructural(
        u3, Formula::Or(Formula::And(var(u5), var(u6)),
                        Formula::And(Formula::Not(var(u5)), var(u6))));
    b.MarkOutput(u3);
    ids = {u1, u2, u3, u4, u5, u6, u7, u8};
    return b.Build().TakeValue();
  }

  // The expected minimum equivalent query of Q1 with fs(u1) = p_u2
  // (the paper's Q3): A root, G backbone output, B and C predicates.
  Gtpq BuildQ3() {
    QueryBuilder b(names);
    QNodeId u1 = b.AddRoot("m1", AttributePredicate::LabelEquals(
                                     names->label_attr(), kA));
    QNodeId u3 = b.AddBackbone(
        u1, EdgeType::kDescendant, "m3",
        AttributePredicate::LabelEquals(names->label_attr(), kG));
    QNodeId u6 = b.AddPredicate(
        u3, EdgeType::kDescendant, "m6",
        AttributePredicate::LabelEquals(names->label_attr(), kB));
    QNodeId u7 = b.AddPredicate(
        u6, EdgeType::kDescendant, "m7",
        AttributePredicate::LabelEquals(names->label_attr(), kC));
    b.SetStructural(u3, Formula::Var(static_cast<int>(u6)));
    b.SetStructural(u6, Formula::Var(static_cast<int>(u7)));
    b.MarkOutput(u3);
    return b.Build().TakeValue();
  }

  std::shared_ptr<AttrNames> names = std::make_shared<AttrNames>();
  std::vector<QNodeId> ids;  // u1..u8 by position (0-based: ids[0]=u1)
};

TEST(AnalysisTest, IndependentlyConstraintNodes) {
  Fig4Fixture fx;
  Gtpq q1 = fx.Build(/*u2_pc=*/false, /*root_fs_negated=*/true);
  QueryAnalysis a(q1);
  // u5 and u8 are the two non-independently-constraint nodes
  // (Example 4: "for both queries, u5 and u8 are ...").
  EXPECT_FALSE(a.independently_constraint(fx.ids[4]));  // u5
  EXPECT_FALSE(a.independently_constraint(fx.ids[7]));  // u8
  for (int i : {0, 1, 2, 3, 5, 6}) {
    EXPECT_TRUE(a.independently_constraint(fx.ids[i])) << "u" << i + 1;
  }
}

TEST(AnalysisTest, SubsumptionDependsOnEdgeType) {
  Fig4Fixture fx;
  Gtpq q1 = fx.Build(/*u2_pc=*/false, true);
  QueryAnalysis a1(q1);
  // Example 4: in Q1 (AD edge), u2 ⊴ u6; u4 ⊴ u7.
  EXPECT_TRUE(a1.Subsumed(fx.ids[1], fx.ids[5]));
  EXPECT_TRUE(a1.Similar(fx.ids[3], fx.ids[6]));
  EXPECT_FALSE(a1.Subsumed(fx.ids[5], fx.ids[1]));  // wrong direction

  Fig4Fixture fx2;
  Gtpq q2 = fx2.Build(/*u2_pc=*/true, true);
  QueryAnalysis a2(q2);
  // In Q2 (PC edge from u1 to u2), u2 is NOT subsumed by u6.
  EXPECT_FALSE(a2.Subsumed(fx2.ids[1], fx2.ids[5]));
}

TEST(AnalysisTest, SatisfiabilityTheorem1) {
  // Example 4's punchline: Q1 is unsatisfiable, Q2 is satisfiable.
  Fig4Fixture fx1, fx2;
  Gtpq q1 = fx1.Build(/*u2_pc=*/false, /*root_fs_negated=*/true);
  Gtpq q2 = fx2.Build(/*u2_pc=*/true, /*root_fs_negated=*/true);
  EXPECT_FALSE(IsSatisfiable(q1));
  EXPECT_TRUE(IsSatisfiable(q2));
}

TEST(AnalysisTest, SatisfiabilityNegationConflict) {
  // root with p & !p over two identical predicate children is
  // satisfiable only if the children differ; identical subtrees under
  // a // edge force a conflict via subsumption (both ways).
  auto names = std::make_shared<AttrNames>();
  QueryBuilder b(names);
  QNodeId r = b.AddRoot("r", AttributePredicate::LabelEquals(
                                 names->label_attr(), 1));
  QNodeId p1 = b.AddPredicate(r, EdgeType::kDescendant, "p1",
                              AttributePredicate::LabelEquals(
                                  names->label_attr(), 2));
  QNodeId p2 = b.AddPredicate(r, EdgeType::kDescendant, "p2",
                              AttributePredicate::LabelEquals(
                                  names->label_attr(), 2));
  b.SetStructural(r,
                  Formula::And(Formula::Var(static_cast<int>(p1)),
                               Formula::Not(Formula::Var(
                                   static_cast<int>(p2)))));
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  EXPECT_FALSE(IsSatisfiable(q));
}

TEST(AnalysisTest, SatisfiableSimpleQueries) {
  auto names = std::make_shared<AttrNames>();
  QueryBuilder b(names);
  QNodeId r = b.AddRoot("r", AttributePredicate::LabelEquals(
                                 names->label_attr(), 1));
  b.AddBackbone(r, EdgeType::kDescendant, "c",
                AttributePredicate::LabelEquals(names->label_attr(), 2));
  b.MarkOutput(r);
  EXPECT_TRUE(IsSatisfiable(b.Build().TakeValue()));
}

TEST(AnalysisTest, UnsatisfiableAttributePredicate) {
  auto names = std::make_shared<AttrNames>();
  QueryBuilder b(names);
  AttributePredicate impossible;
  impossible.AddAtom(names->Intern("year"), CmpOp::kGt,
                     AttrValue(int64_t{5}));
  impossible.AddAtom(names->Intern("year"), CmpOp::kLt,
                     AttrValue(int64_t{3}));
  QNodeId r = b.AddRoot("r", impossible);
  b.MarkOutput(r);
  EXPECT_FALSE(IsSatisfiable(b.Build().TakeValue()));
}

TEST(AnalysisTest, ContainmentExample5) {
  // With fs(u1) = p_u2 (positive), the paper states Q2 ⊑ Q3, Q2 ⊑ Q1
  // and Q1 ≡ Q3.
  Fig4Fixture fx1, fx2, fx3;
  Gtpq q1 = fx1.Build(/*u2_pc=*/false, /*root_fs_negated=*/false);
  Gtpq q2 = fx2.Build(/*u2_pc=*/true, /*root_fs_negated=*/false);
  Gtpq q3 = fx3.BuildQ3();
  EXPECT_TRUE(IsContainedIn(q2, q3));
  EXPECT_TRUE(IsContainedIn(q2, q1));
  EXPECT_TRUE(IsContainedIn(q1, q3));
  EXPECT_TRUE(IsContainedIn(q3, q1));
  EXPECT_TRUE(AreEquivalent(q1, q3));
  // And the PC variant is strictly narrower, not equivalent.
  EXPECT_FALSE(IsContainedIn(q3, q2));
}

TEST(AnalysisTest, ContainmentRejectsDifferentOutputs) {
  auto names = std::make_shared<AttrNames>();
  QueryBuilder b1(names);
  QNodeId r1 = b1.AddRoot("r", AttributePredicate::LabelEquals(
                                   names->label_attr(), 1));
  b1.MarkOutput(r1);
  Gtpq one = b1.Build().TakeValue();

  QueryBuilder b2(names);
  QNodeId r2 = b2.AddRoot("r", AttributePredicate::LabelEquals(
                                   names->label_attr(), 1));
  QNodeId c2 = b2.AddBackbone(r2, EdgeType::kDescendant, "c",
                              AttributePredicate::LabelEquals(
                                  names->label_attr(), 1));
  b2.MarkOutput(r2);
  b2.MarkOutput(c2);
  Gtpq two = b2.Build().TakeValue();
  EXPECT_FALSE(IsContainedIn(one, two));
  EXPECT_FALSE(IsContainedIn(two, one));
}

TEST(AnalysisTest, MinimizeExample6) {
  Fig4Fixture fx;
  Gtpq q1 = fx.Build(/*u2_pc=*/false, /*root_fs_negated=*/false);
  Gtpq minimized = Minimize(q1);
  // Q1 minimizes to the 4-node Q3 (Example 6).
  EXPECT_EQ(minimized.size(), 4u);
  Fig4Fixture fx3;
  fx3.names = fx.names;
  EXPECT_TRUE(AreEquivalent(minimized, fx3.BuildQ3()));
  EXPECT_TRUE(AreEquivalent(minimized, q1));
}

TEST(AnalysisTest, MinimizeKeepsMinimalQueries) {
  Fig4Fixture fx;
  Gtpq q3 = fx.BuildQ3();
  Gtpq minimized = Minimize(q3);
  EXPECT_EQ(minimized.size(), q3.size());
}

TEST(AnalysisTest, MinimizeUnsatisfiableQuery) {
  Fig4Fixture fx;
  Gtpq q1 = fx.Build(/*u2_pc=*/false, /*root_fs_negated=*/true);
  ASSERT_FALSE(IsSatisfiable(q1));
  Gtpq minimized = Minimize(q1);
  EXPECT_FALSE(IsSatisfiable(minimized));
  EXPECT_LE(minimized.size(), q1.size());
  EXPECT_EQ(minimized.outputs().size(), q1.outputs().size());
}

// Property: minimization preserves answers on random graphs.
TEST(AnalysisTest, MinimizePreservesSemantics) {
  RandomDagOptions go;
  go.num_nodes = 60;
  go.avg_degree = 2.0;
  go.num_labels = 5;
  go.seed = 11;
  DataGraph g = RandomDag(go);
  int checked = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 6;
    qo.predicate_fraction = 0.5;
    qo.disjunction_probability = 0.4;
    qo.negation_probability = 0.2;
    qo.output_fraction = 0.6;
    qo.seed = seed * 17;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    Gtpq m = Minimize(*q);
    EXPECT_LE(m.size(), q->size());
    auto before = EvaluateBruteForce(g, *q);
    auto after = EvaluateBruteForce(g, m);
    // Node ids are renumbered by the rebuild; outputs keep their
    // relative order, so answers align positionally.
    ASSERT_EQ(before.tuples, after.tuples)
        << "seed " << seed << "\noriginal:\n"
                             << q->ToString(*g.attr_names())
                             << "\nminimized:\n"
                             << m.ToString(*g.attr_names());
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

// Property: containment agrees with evaluation on random graphs in the
// sound direction (if contained, answers are subsets).
TEST(AnalysisTest, ContainmentSoundOnRandomGraphs) {
  RandomDagOptions go;
  go.num_nodes = 50;
  go.avg_degree = 2.0;
  go.num_labels = 4;
  go.seed = 5;
  DataGraph g = RandomDag(go);
  int contained_pairs = 0;
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 4;
    qo.predicate_fraction = 0.5;
    qo.output_fraction = 0.4;
    qo.seed = seed * 13 + 1;
    auto qa = GenerateRandomQueryWithRetry(g, qo);
    qo.seed = seed * 29 + 7;
    auto qb = GenerateRandomQueryWithRetry(g, qo);
    if (!qa.has_value() || !qb.has_value()) continue;
    if (!IsContainedIn(*qa, *qb)) continue;
    ++contained_pairs;
    auto ra = EvaluateBruteForce(g, *qa);
    auto rb = EvaluateBruteForce(g, *qb);
    for (const auto& t : ra.tuples) {
      EXPECT_TRUE(std::find(rb.tuples.begin(), rb.tuples.end(), t) !=
                  rb.tuples.end())
          << "containment violated at seed " << seed;
    }
  }
  // Self-containment at least fires when qa == qb structurally; ensure
  // the loop exercised the sound direction at all.
  SUCCEED() << contained_pairs << " contained pairs checked";
}

}  // namespace
}  // namespace gtpq
