#include <gtest/gtest.h>

#include "baselines/decompose.h"
#include "baselines/hgjoin.h"
#include "baselines/naive.h"
#include "baselines/tree_encoding.h"
#include "baselines/twig2stack.h"
#include "baselines/twig_on_graph.h"
#include "baselines/twigstack.h"
#include "baselines/twigstackd.h"
#include "core/gtea.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "test_util.h"

namespace gtpq {
namespace {

// Pure tree: tree-descendant semantics coincide with graph semantics,
// so brute force is a valid oracle for the tree-only engines.
DataGraph PureTree(size_t n, uint64_t seed) {
  RandomTreeOptions o;
  o.num_nodes = n;
  o.cross_edge_fraction = 0.0;
  o.num_labels = 5;
  o.seed = seed;
  return RandomTreeWithCrossEdges(o);
}

QueryGenOptions TreeQueryOptions(size_t n, uint64_t seed) {
  QueryGenOptions o;
  o.num_nodes = n;
  o.pc_probability = 0.4;
  o.predicate_fraction = 0.3;
  o.output_fraction = 0.8;
  o.seed = seed;
  return o;
}

TEST(TreeEncodingTest, RegionsNestProperly) {
  DataGraph g = PureTree(60, 5);
  auto enc = BuildRegionEncoding(g);
  for (NodeId v = 1; v < g.NumNodes(); ++v) {
    NodeId p = g.TreeParentOf(v);
    ASSERT_NE(p, kInvalidNode);
    EXPECT_TRUE(enc.IsTreeAncestor(p, v));
    EXPECT_TRUE(enc.IsTreeParent(p, v));
    EXPECT_FALSE(enc.IsTreeAncestor(v, p));
  }
}

class TreeEngines : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeEngines, TwigStackMatchesBruteForceOnTrees) {
  DataGraph g = PureTree(80, GetParam());
  auto enc = BuildRegionEncoding(g);
  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  int evaluated = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    auto q = GenerateRandomQueryWithRetry(
        g, TreeQueryOptions(5, seed * 7 + GetParam()));
    if (!q.has_value() || !q->IsConjunctive()) continue;
    EngineStats stats;
    auto actual = EvaluateTwigStack(g, enc, *q, &stats);
    auto expected = EvaluateBruteForce(g, tc, *q);
    ASSERT_EQ(actual, expected) << q->ToString(*g.attr_names());
    ++evaluated;
  }
  EXPECT_GT(evaluated, 5);
}

TEST_P(TreeEngines, Twig2StackMatchesBruteForceOnTrees) {
  DataGraph g = PureTree(80, GetParam() + 100);
  auto enc = BuildRegionEncoding(g);
  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  int evaluated = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    auto q = GenerateRandomQueryWithRetry(
        g, TreeQueryOptions(5, seed * 13 + GetParam()));
    if (!q.has_value() || !q->IsConjunctive()) continue;
    EngineStats stats;
    auto actual = EvaluateTwig2Stack(g, enc, *q, &stats);
    auto expected = EvaluateBruteForce(g, tc, *q);
    ASSERT_EQ(actual, expected) << q->ToString(*g.attr_names());
    ++evaluated;
  }
  EXPECT_GT(evaluated, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeEngines, ::testing::Values(1, 2, 3));

class DagEngines : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DagEngines, TwigStackDMatchesBruteForce) {
  RandomDagOptions o;
  o.num_nodes = 70;
  o.avg_degree = 2.0;
  o.num_labels = 5;
  o.seed = GetParam();
  DataGraph g = RandomDag(o);
  auto sspi = Sspi::Build(g.graph());
  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  int evaluated = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    QueryGenOptions qo = TreeQueryOptions(6, seed * 11 + GetParam());
    qo.pc_probability = 0.3;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    EngineStats stats;
    auto actual = EvaluateTwigStackD(g, sspi, *q, &stats);
    auto expected = EvaluateBruteForce(g, tc, *q);
    ASSERT_EQ(actual, expected) << q->ToString(*g.attr_names());
    ++evaluated;
  }
  EXPECT_GT(evaluated, 5);
}

TEST_P(DagEngines, HgJoinVariantsMatchBruteForce) {
  RandomDagOptions o;
  o.num_nodes = 70;
  o.avg_degree = 2.0;
  o.num_labels = 5;
  o.seed = GetParam() + 77;
  DataGraph g = RandomDag(o);
  auto idx = IntervalIndex::Build(g.graph());
  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  int evaluated = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    QueryGenOptions qo = TreeQueryOptions(5, seed * 17 + GetParam());
    qo.pc_probability = 0.3;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    auto expected = EvaluateBruteForce(g, tc, *q);
    {
      EngineStats stats;
      HgJoinOptions opts;
      HgJoinReport report;
      auto plus = EvaluateHgJoin(g, idx, *q, opts, &stats, &report);
      ASSERT_EQ(plus, expected) << "HGJoin+ " << q->ToString(*g.attr_names());
      EXPECT_GT(report.plans_tried, 0u);
    }
    {
      EngineStats stats;
      HgJoinOptions opts;
      opts.graph_intermediates = true;
      auto star = EvaluateHgJoin(g, idx, *q, opts, &stats, nullptr);
      ASSERT_EQ(star, expected) << "HGJoin* " << q->ToString(*g.attr_names());
    }
    ++evaluated;
  }
  EXPECT_GT(evaluated, 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagEngines, ::testing::Values(4, 5, 6));

TEST(TwigOnGraphTest, CrossEdgeDecompositionMatchesGtea) {
  // Tree + forward cross edges; the query uses a PC edge that we
  // declare as the cross edge, so the wrapper must split and rejoin.
  RandomTreeOptions o;
  o.num_nodes = 120;
  o.cross_edge_fraction = 0.4;
  o.num_labels = 4;
  o.seed = 17;
  DataGraph g = RandomTreeWithCrossEdges(o);
  auto enc = BuildRegionEncoding(g);
  GteaEngine gtea(g);

  // root(l0) -[ad]-> a(l1); a -[pc CROSS]-> b(l2) -[ad]-> c(l3)... only
  // meaningful if the PC edge matches cross edges; since PC edges in
  // the data include tree edges too, semantics still agree as long as
  // the wrapper joins on *all* graph edges — which it does.
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(0));
  QNodeId a = b.AddBackbone(r, EdgeType::kDescendant, "a", b.Label(1));
  QNodeId x = b.AddBackbone(a, EdgeType::kChild, "x", b.Label(2));
  QNodeId c = b.AddBackbone(x, EdgeType::kDescendant, "c", b.Label(3));
  for (QNodeId u : {r, a, x, c}) b.MarkOutput(u);
  Gtpq q = b.Build().TakeValue();

  EngineStats stats;
  auto via_twigstack = EvaluateTwigOnGraph(
      g, q, {x},
      [&](const Gtpq& frag) {
        EngineStats s;
        return EvaluateTwigStack(g, enc, frag, &s);
      },
      &stats);
  auto expected = gtea.Evaluate(q);
  // Caveat: the wrapper's fragments use tree semantics for AD edges;
  // equivalence holds when AD edges do not span cross edges. Our tree's
  // cross edges connect arbitrary nodes, so compare against brute force
  // restricted semantics via GTEA only when the tuples agree; at
  // minimum the wrapper must never produce tuples GTEA rejects.
  for (const auto& t : via_twigstack.tuples) {
    EXPECT_TRUE(std::find(expected.tuples.begin(), expected.tuples.end(),
                          t) != expected.tuples.end());
  }
}

TEST(DecomposeTest, MatchesGteaOnLogicalQueries) {
  RandomDagOptions o;
  o.num_nodes = 60;
  o.avg_degree = 2.0;
  o.num_labels = 5;
  o.seed = 31;
  DataGraph g = RandomDag(o);
  GteaEngine gtea(g);
  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  int evaluated = 0;
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 6;
    qo.predicate_fraction = 0.5;
    qo.disjunction_probability = 0.6;
    qo.negation_probability = 0.3;
    qo.output_fraction = 0.7;
    qo.seed = seed * 23;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    EngineStats stats;
    auto decomposed = EvaluateByDecomposition(
        *q,
        [&](const Gtpq& conj) {
          EngineStats s;
          return EvaluateBruteForce(g, tc, conj);
        },
        &stats);
    if (!decomposed.ok()) continue;  // nested negation: unsupported
    auto expected = gtea.Evaluate(*q);
    ASSERT_EQ(*decomposed, expected) << q->ToString(*g.attr_names());
    ++evaluated;
  }
  EXPECT_GT(evaluated, 6);
}

TEST(DecomposeTest, CountsExponentialBlowup) {
  // A root whose fs is a disjunction chain over k predicate children
  // decomposes into k conjunctive queries.
  auto names = std::make_shared<AttrNames>();
  QueryBuilder b(names);
  QNodeId r = b.AddRoot("r", AttributePredicate::LabelEquals(
                                 names->label_attr(), 1));
  std::vector<logic::FormulaRef> vars;
  for (int i = 0; i < 4; ++i) {
    QNodeId p = b.AddPredicate(
        r, EdgeType::kDescendant, "p" + std::to_string(i),
        AttributePredicate::LabelEquals(names->label_attr(), 2 + i));
    vars.push_back(logic::Formula::Var(static_cast<int>(p)));
  }
  b.SetStructural(r, logic::Formula::Or(std::move(vars)));
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  auto count = CountDecomposedQueries(q);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 4u);
}

TEST(DecomposeTest, HandlesNestedNegation) {
  // !(p with !pp): the forced-branch recursion of the wrapper — the
  // shape Table 4's NEG2/NEG3 queries need.
  RandomDagOptions go;
  go.num_nodes = 50;
  go.avg_degree = 2.0;
  go.num_labels = 4;
  go.seed = 8;
  DataGraph g = RandomDag(go);
  QueryBuilder b(g.attr_names_ptr());
  QNodeId r = b.AddRoot("r", b.Label(1));
  QNodeId p = b.AddPredicate(r, EdgeType::kDescendant, "p", b.Label(2));
  QNodeId pp = b.AddPredicate(p, EdgeType::kDescendant, "pp",
                              b.Label(3));
  b.SetStructural(p, logic::Formula::Not(logic::Formula::Var(
                         static_cast<int>(pp))));
  b.SetStructural(r, logic::Formula::Not(logic::Formula::Var(
                         static_cast<int>(p))));
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  auto count = CountDecomposedQueries(q);
  ASSERT_TRUE(count.ok());
  EXPECT_GE(*count, 2u);

  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  EngineStats stats;
  auto decomposed = EvaluateByDecomposition(
      q, [&](const Gtpq& conj) { return EvaluateBruteForce(g, tc, conj); },
      &stats);
  ASSERT_TRUE(decomposed.ok());
  EXPECT_EQ(*decomposed, EvaluateBruteForce(g, tc, q));
}

}  // namespace
}  // namespace gtpq
