#include <gtest/gtest.h>

#include "baselines/decompose.h"
#include "baselines/naive.h"
#include "baselines/tree_encoding.h"
#include "baselines/twig_on_graph.h"
#include "baselines/twigstack.h"
#include "baselines/twigstackd.h"
#include "core/gtea.h"
#include "graph/algorithms.h"
#include "workload/arxiv.h"
#include "workload/xmark.h"
#include "workload/xmark_queries.h"

namespace gtpq {
namespace {

using workload::ArxivOptions;
using workload::GenerateArxiv;
using workload::GenerateXmark;
using workload::XmarkOptions;

XmarkOptions SmallXmark() {
  XmarkOptions o;
  o.scale = 0.002;
  return o;
}

TEST(XmarkTest, ShapeMatchesTable1Ratios) {
  DataGraph g = GenerateXmark(SmallXmark());
  EXPECT_TRUE(IsDag(g.graph()));
  EXPECT_TRUE(g.HasSpanningTree());
  // Edge/node ratio around 1.2 (Table 1: 1.54M/1.29M).
  const double ratio = static_cast<double>(g.NumEdges()) /
                       static_cast<double>(g.NumNodes());
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.4);
  // Average spanning-tree depth is small (paper: ~5).
  auto depths = DepthsFromRoots(g.graph(), /*longest=*/false);
  double total = 0;
  for (auto d : depths) total += d;
  EXPECT_LT(total / static_cast<double>(g.NumNodes()), 6.0);
}

TEST(XmarkTest, ScaleGrowsLinearly) {
  XmarkOptions a = SmallXmark();
  XmarkOptions b = SmallXmark();
  b.scale = 2 * a.scale;
  const size_t na = GenerateXmark(a).NumNodes();
  const size_t nb = GenerateXmark(b).NumNodes();
  EXPECT_GT(nb, na * 3 / 2);
  EXPECT_LT(nb, na * 5 / 2);
}

TEST(XmarkTest, Q1ThroughQ3AgreeAcrossEngines) {
  DataGraph g = GenerateXmark(SmallXmark());
  GteaEngine gtea(g);
  auto enc = BuildRegionEncoding(g);
  auto sspi = Sspi::Build(g.graph());

  for (int variant = 1; variant <= 3; ++variant) {
    workload::XmarkQuery wq =
        variant == 1   ? workload::BuildXmarkQ1(g, 3)
        : variant == 2 ? workload::BuildXmarkQ2(g, 3, 4)
                       : workload::BuildXmarkQ3(g, 3, 4, 5);
    auto expected = gtea.Evaluate(wq.query);
    // Cross-validate GTEA itself against brute force at this scale.
    auto brute = EvaluateBruteForce(g, wq.query);
    ASSERT_EQ(expected, brute) << "GTEA vs brute force, Q" << variant;

    EngineStats stats;
    auto via_twigstackd = EvaluateTwigStackD(g, sspi, wq.query, &stats);
    EXPECT_EQ(via_twigstackd, expected) << "TwigStackD Q" << variant;

    std::vector<QNodeId> cross;
    for (QNodeId u = 0; u < wq.query.NumNodes(); ++u) {
      for (const auto& name : wq.cross_node_names) {
        if (wq.query.node(u).name == name) cross.push_back(u);
      }
    }
    EngineStats ts_stats;
    auto via_twigstack = EvaluateTwigOnGraph(
        g, wq.query, cross,
        [&](const Gtpq& frag) {
          EngineStats s;
          return EvaluateTwigStack(g, enc, frag, &s);
        },
        &ts_stats);
    EXPECT_EQ(via_twigstack, expected) << "TwigStack Q" << variant;
  }
}

TEST(XmarkTest, Exp2QueriesAgreeWithBruteForce) {
  XmarkOptions o;
  o.scale = 0.001;
  DataGraph g = GenerateXmark(o);
  GteaEngine gtea(g);
  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  for (const auto& name : workload::Exp2QueryNames()) {
    auto wq = workload::BuildExp2Query(g, 3, 4, name);
    ASSERT_TRUE(wq.ok()) << name << ": " << wq.status().ToString();
    auto actual = gtea.Evaluate(wq->query);
    auto expected = EvaluateBruteForce(g, tc, wq->query);
    ASSERT_EQ(actual, expected) << name;

    // Decompose-and-merge over a conjunctive oracle must agree too.
    EngineStats stats;
    auto decomposed = EvaluateByDecomposition(
        wq->query,
        [&](const Gtpq& conj) { return EvaluateBruteForce(g, tc, conj); },
        &stats);
    ASSERT_TRUE(decomposed.ok()) << name << ": "
                                 << decomposed.status().ToString();
    ASSERT_EQ(*decomposed, expected) << "decompose " << name;
  }
}

TEST(XmarkTest, Exp1OutputVariants) {
  DataGraph g = GenerateXmark(SmallXmark());
  GteaEngine gtea(g);
  size_t q8_outputs = 0;
  for (int variant = 4; variant <= 8; ++variant) {
    auto wq = workload::BuildExp1Query(g, 3, 4, variant);
    ASSERT_TRUE(wq.ok());
    auto result = gtea.Evaluate(wq->query);
    if (variant == 4) {
      EXPECT_EQ(result.output_nodes.size(), 1u);
    }
    if (variant == 8) q8_outputs = result.output_nodes.size();
  }
  EXPECT_GT(q8_outputs, 10u);  // all 15 skeleton nodes
}

TEST(ArxivTest, MatchesReportedStatistics) {
  ArxivOptions o;
  DataGraph g = GenerateArxiv(o);
  EXPECT_EQ(g.NumNodes(), 9562u);
  // Duplicate random refs may merge; stay within 2% of 28120.
  EXPECT_GT(g.NumEdges(), 27500u);
  EXPECT_LE(g.NumEdges(), 28120u);
  EXPECT_TRUE(IsDag(g.graph()));
  // Roughly 1132 distinct labels.
  EXPECT_GT(g.NumDistinctLabels(), 900u);
  EXPECT_LE(g.NumDistinctLabels(), 1132u);
}

}  // namespace
}  // namespace gtpq
