#ifndef GTPQ_TESTS_TEST_UTIL_H_
#define GTPQ_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "query/gtpq.h"

namespace gtpq {
namespace testing {

/// Builds a finalized labeled graph from an edge list.
inline DataGraph MakeGraph(size_t n, const std::vector<int64_t>& labels,
                           const std::vector<std::pair<NodeId, NodeId>>& edges) {
  DataGraph g(n);
  for (NodeId v = 0; v < n && v < labels.size(); ++v) {
    g.SetLabel(v, labels[v]);
  }
  for (const auto& [a, b] : edges) g.AddEdge(a, b);
  g.Finalize();
  return g;
}

/// A 10-node DAG used across unit tests (edges point downward; the
/// U+2572 diagonals keep -Wcomment quiet about trailing backslashes):
///
///        0(a)
///       /    ╲
///     1(b)   2(b)
///     /  ╲      ╲
///   3(c) 4(d)   5(c)
///    |     ╲   /  ╲
///   6(e)   7(e)   8(d)
///            |
///           9(f)
///
/// Labels: a=0 b=1 c=2 d=3 e=4 f=5.
inline DataGraph SmallDag() {
  return MakeGraph(10, {0, 1, 1, 2, 3, 2, 4, 4, 3, 5},
                   {{0, 1},
                    {0, 2},
                    {1, 3},
                    {1, 4},
                    {2, 5},
                    {3, 6},
                    {4, 7},
                    {5, 7},
                    {5, 8},
                    {7, 9}});
}

}  // namespace testing
}  // namespace gtpq

#endif  // GTPQ_TESTS_TEST_UTIL_H_
