#include <gtest/gtest.h>

#include "graph/generators.h"
#include "reachability/chain_cover.h"
#include "reachability/contour.h"
#include "reachability/interval_index.h"
#include "reachability/sspi.h"
#include "reachability/three_hop.h"
#include "reachability/transitive_closure.h"
#include "test_util.h"

namespace gtpq {
namespace {

using testing::SmallDag;

TEST(TransitiveClosureTest, SmallDagPairs) {
  DataGraph g = SmallDag();
  auto tc = TransitiveClosure::Build(g.graph());
  EXPECT_TRUE(tc.Reaches(0, 9));
  EXPECT_TRUE(tc.Reaches(1, 6));
  EXPECT_TRUE(tc.Reaches(2, 9));
  EXPECT_FALSE(tc.Reaches(2, 6));
  EXPECT_FALSE(tc.Reaches(9, 0));
  // Non-empty-path semantics: no node reaches itself in a DAG.
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_FALSE(tc.Reaches(v, v)) << "v" << v;
  }
}

TEST(TransitiveClosureTest, CycleSemantics) {
  // 0 -> 1 -> 2 -> 0 cycle plus a tail 2 -> 3 and a self loop at 4.
  DataGraph g = testing::MakeGraph(
      5, {0, 0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {4, 4}});
  auto tc = TransitiveClosure::Build(g.graph());
  EXPECT_TRUE(tc.Reaches(0, 0));  // on a cycle
  EXPECT_TRUE(tc.Reaches(1, 0));
  EXPECT_TRUE(tc.Reaches(0, 3));
  EXPECT_FALSE(tc.Reaches(3, 3));  // not on a cycle
  EXPECT_TRUE(tc.Reaches(4, 4));   // self loop
  EXPECT_FALSE(tc.Reaches(3, 0));
}

TEST(ChainCoverTest, ValidOnSmallDag) {
  DataGraph g = SmallDag();
  auto cover = BuildGreedyChainCover(g.graph());
  EXPECT_TRUE(ValidateChainCover(g.graph(), cover));
  size_t covered = 0;
  for (const auto& chain : cover.chains) covered += chain.size();
  EXPECT_EQ(covered, g.NumNodes());
}

TEST(ChainCoverTest, SingleChainForPath) {
  DataGraph g = testing::MakeGraph(5, {0, 0, 0, 0, 0},
                                   {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto cover = BuildGreedyChainCover(g.graph());
  EXPECT_EQ(cover.NumChains(), 1u);
  EXPECT_TRUE(ValidateChainCover(g.graph(), cover));
}

TEST(ChainCoverTest, ValidOnRandomDags) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomDagOptions opt;
    opt.num_nodes = 200;
    opt.avg_degree = 2.5;
    opt.seed = seed;
    DataGraph g = RandomDag(opt);
    auto cover = BuildGreedyChainCover(g.graph());
    EXPECT_TRUE(ValidateChainCover(g.graph(), cover)) << "seed " << seed;
  }
}

// ---------- Oracle-equivalence sweeps for every index ----------

struct IndexCase {
  size_t nodes;
  double degree;
  bool cyclic;
  uint64_t seed;
};

class IndexEquivalence : public ::testing::TestWithParam<IndexCase> {
 protected:
  DataGraph MakeCaseGraph() const {
    const IndexCase& c = GetParam();
    if (c.cyclic) {
      RandomDigraphOptions o;
      o.num_nodes = c.nodes;
      o.avg_degree = c.degree;
      o.seed = c.seed;
      return RandomDigraph(o);
    }
    RandomDagOptions o;
    o.num_nodes = c.nodes;
    o.avg_degree = c.degree;
    o.seed = c.seed;
    return RandomDag(o);
  }
};

TEST_P(IndexEquivalence, ThreeHopMatchesClosure) {
  DataGraph g = MakeCaseGraph();
  auto tc = TransitiveClosure::Build(g.graph());
  auto idx = ThreeHopIndex::Build(g.graph());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_EQ(idx.Reaches(u, v), tc.Reaches(u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST_P(IndexEquivalence, IntervalMatchesClosure) {
  DataGraph g = MakeCaseGraph();
  auto tc = TransitiveClosure::Build(g.graph());
  auto idx = IntervalIndex::Build(g.graph());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_EQ(idx.Reaches(u, v), tc.Reaches(u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST_P(IndexEquivalence, SspiMatchesClosure) {
  DataGraph g = MakeCaseGraph();
  auto tc = TransitiveClosure::Build(g.graph());
  auto idx = Sspi::Build(g.graph());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_EQ(idx.Reaches(u, v), tc.Reaches(u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST_P(IndexEquivalence, ContoursMatchSetReachability) {
  DataGraph g = MakeCaseGraph();
  auto tc = TransitiveClosure::Build(g.graph());
  auto idx = ThreeHopIndex::Build(g.graph());
  Rng rng(GetParam().seed * 977 + 3);
  for (int round = 0; round < 12; ++round) {
    const size_t k = 1 + rng.NextBounded(5);
    std::vector<NodeId> members;
    for (size_t i = 0; i < k; ++i) {
      members.push_back(static_cast<NodeId>(rng.NextBounded(g.NumNodes())));
    }
    Contour cp = MergePredLists(idx, members);
    Contour cs = MergeSuccLists(idx, members);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      bool expect_to = false, expect_from = false;
      for (NodeId w : members) {
        expect_to |= tc.Reaches(v, w);
        expect_from |= tc.Reaches(w, v);
      }
      ASSERT_EQ(NodeReachesContour(idx, v, cp), expect_to)
          << "v=" << v << " round=" << round;
      ASSERT_EQ(ContourReachesNode(idx, cs, v), expect_from)
          << "v=" << v << " round=" << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexEquivalence,
    ::testing::Values(
        IndexCase{30, 1.0, false, 1}, IndexCase{30, 2.0, false, 2},
        IndexCase{60, 1.5, false, 3}, IndexCase{60, 3.0, false, 4},
        IndexCase{120, 2.0, false, 5}, IndexCase{120, 4.0, false, 6},
        IndexCase{40, 1.5, true, 7}, IndexCase{40, 2.5, true, 8},
        IndexCase{80, 2.0, true, 9}, IndexCase{80, 3.5, true, 10},
        IndexCase{25, 0.5, false, 11}, IndexCase{25, 0.5, true, 12}));

TEST(ThreeHopTest, ChainReachabilityWithinChain) {
  // A pure path: one chain; sid ordering answers everything.
  DataGraph g = testing::MakeGraph(6, {0, 0, 0, 0, 0, 0},
                                   {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto idx = ThreeHopIndex::Build(g.graph());
  EXPECT_EQ(idx.NumChains(), 1u);
  EXPECT_EQ(idx.TotalLoutSize(), 0u);
  EXPECT_EQ(idx.TotalLinSize(), 0u);
  EXPECT_TRUE(idx.Reaches(0, 5));
  EXPECT_FALSE(idx.Reaches(5, 0));
  EXPECT_FALSE(idx.Reaches(3, 3));
}

TEST(ThreeHopTest, EmptyGraph) {
  Digraph g;
  g.Finalize();
  auto idx = ThreeHopIndex::Build(g);
  EXPECT_EQ(idx.NumChains(), 0u);
}

TEST(ThreeHopTest, IndexSizeSmallerThanClosure) {
  RandomDagOptions o;
  o.num_nodes = 400;
  o.avg_degree = 2.0;
  o.seed = 99;
  DataGraph g = RandomDag(o);
  auto idx = ThreeHopIndex::Build(g.graph());
  // The 3-hop lists must be far below the quadratic closure size.
  EXPECT_LT(idx.TotalLoutSize() + idx.TotalLinSize(),
            g.NumNodes() * g.NumNodes() / 8);
}

TEST(ContourTest, SelfMembershipCornerCases) {
  // v in S must not make v "reach" S through the zero-length path.
  DataGraph g = testing::MakeGraph(3, {0, 0, 0}, {{0, 1}, {1, 2}});
  auto idx = ThreeHopIndex::Build(g.graph());
  std::vector<NodeId> members{1};
  Contour cp = MergePredLists(idx, members);
  EXPECT_TRUE(NodeReachesContour(idx, 0, cp));
  EXPECT_FALSE(NodeReachesContour(idx, 1, cp));  // zero-length path
  EXPECT_FALSE(NodeReachesContour(idx, 2, cp));

  // With a cycle through the member, the self probe becomes genuine.
  DataGraph c = testing::MakeGraph(3, {0, 0, 0}, {{0, 1}, {1, 0}, {1, 2}});
  auto cidx = ThreeHopIndex::Build(c.graph());
  Contour ccp = MergePredLists(cidx, members);
  EXPECT_TRUE(NodeReachesContour(cidx, 1, ccp));
}

TEST(ContourTest, EmptyMemberSet) {
  DataGraph g = SmallDag();
  auto idx = ThreeHopIndex::Build(g.graph());
  Contour cp = MergePredLists(idx, {});
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_FALSE(NodeReachesContour(idx, v, cp));
  }
}

TEST(SspiTest, IndexSizeIsSurplusEdges) {
  DataGraph g = SmallDag();
  auto idx = Sspi::Build(g.graph());
  // 10 edges, 9 tree edges (every node but the root has a parent).
  EXPECT_EQ(idx.TotalSurplus(), g.NumEdges() - (g.NumNodes() - 1));
}

TEST(IntervalIndexTest, PostOrderIsPermutation) {
  DataGraph g = SmallDag();
  auto idx = IntervalIndex::Build(g.graph());
  std::vector<char> seen(g.NumNodes(), 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    uint32_t p = idx.PostOf(v);
    ASSERT_LT(p, g.NumNodes());
    EXPECT_FALSE(seen[p]);
    seen[p] = 1;
  }
}

}  // namespace
}  // namespace gtpq
