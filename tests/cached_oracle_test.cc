// CachedOracle unit tests: probe identity under eviction pressure,
// hit/miss accounting, LRU mechanics of the sharded cache, and cache
// coherence for summaries.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "reachability/cached_oracle.h"
#include "reachability/factory.h"
#include "reachability/transitive_closure.h"

namespace gtpq {
namespace {

std::shared_ptr<const ReachabilityOracle> BuildInner(const Digraph& g) {
  return std::shared_ptr<const ReachabilityOracle>(
      MakeReachabilityIndex(ReachabilityBackend::kContour, g));
}

TEST(ShardedLruCacheTest, InsertLookupEvict) {
  ShardedLruCache cache(/*capacity=*/8, /*num_shards=*/1);
  EXPECT_EQ(cache.num_shards(), 1u);
  for (uint64_t k = 0; k < 8; ++k) cache.Insert(k, k % 2 == 0);
  EXPECT_EQ(cache.Size(), 8u);
  for (uint64_t k = 0; k < 8; ++k) {
    auto v = cache.Lookup(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, k % 2 == 0);
  }
  // Touch key 0 so it is hot, then overflow: key 1 (now the LRU entry)
  // must be the victim.
  EXPECT_TRUE(cache.Lookup(0).has_value());
  cache.Insert(100, true);
  EXPECT_EQ(cache.Size(), 8u);
  EXPECT_TRUE(cache.Lookup(0).has_value());
  EXPECT_FALSE(cache.Lookup(1).has_value());
  // Refreshing an existing key must not grow the cache.
  cache.Insert(100, false);
  EXPECT_EQ(cache.Size(), 8u);
  EXPECT_EQ(*cache.Lookup(100), false);
  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_FALSE(cache.Lookup(0).has_value());
}

// The decorator must answer every probe identically before and after
// eviction pressure: a tiny cache forced through all-pairs probing
// evicts constantly, and a second all-pairs pass (re-answering evicted
// probes from the inner index) must reproduce ground truth exactly.
TEST(CachedOracleTest, ProbesSurviveEvictionPressure) {
  for (bool cyclic : {false, true}) {
    DataGraph g = cyclic ? RandomDigraph({.num_nodes = 60,
                                          .avg_degree = 2.0,
                                          .num_labels = 4,
                                          .seed = 23})
                         : RandomDag({.num_nodes = 60,
                                      .avg_degree = 2.5,
                                      .num_labels = 4,
                                      .locality = 1.0,
                                      .seed = 23});
    auto tc = TransitiveClosure::Build(g.graph());
    CachedOracleOptions tiny;
    tiny.capacity = 64;  // ~2% of the 3600 distinct probes
    tiny.num_shards = 4;
    CachedOracle cached(BuildInner(g.graph()), tiny);
    cached.stats().Reset();

    for (int pass = 0; pass < 2; ++pass) {
      for (NodeId a = 0; a < g.NumNodes(); ++a) {
        for (NodeId b = 0; b < g.NumNodes(); ++b) {
          ASSERT_EQ(cached.Reaches(a, b), tc.Reaches(a, b))
              << "pass " << pass << " (" << a << ", " << b << ")";
        }
      }
    }
    const IndexStats& st = cached.stats();
    const uint64_t all_pairs = 2ull * g.NumNodes() * g.NumNodes();
    EXPECT_EQ(st.queries, all_pairs);
    EXPECT_EQ(st.cache_hits + st.cache_misses, all_pairs);
    // The cache is far too small for the working set: the second pass
    // cannot be all hits, and eviction keeps the size at capacity.
    EXPECT_GT(st.cache_misses, static_cast<uint64_t>(g.NumNodes()));
    EXPECT_LE(cached.CachedProbes(), tiny.capacity * 2);
  }
}

TEST(CachedOracleTest, HitsSkipInnerLookupsAndClearRestores) {
  DataGraph g = RandomDag({.num_nodes = 80,
                           .avg_degree = 2.5,
                           .num_labels = 5,
                           .locality = 1.0,
                           .seed = 3});
  CachedOracle cached(BuildInner(g.graph()));
  cached.stats().Reset();

  cached.Reaches(0, 40);
  const IndexStats first = cached.stats();
  EXPECT_EQ(first.cache_misses, 1u);
  EXPECT_EQ(first.cache_hits, 0u);

  cached.Reaches(0, 40);
  const IndexStats second = cached.stats();
  EXPECT_EQ(second.cache_hits, 1u);
  // The hit added no inner index work.
  EXPECT_EQ(second.elements_looked_up, first.elements_looked_up);

  cached.Clear();
  EXPECT_EQ(cached.CachedProbes(), 0u);
  cached.Reaches(0, 40);
  EXPECT_EQ(cached.stats().cache_misses, 2u);
}

TEST(CachedOracleTest, SetProbesCacheBySummary) {
  DataGraph g = RandomDag({.num_nodes = 50,
                           .avg_degree = 2.0,
                           .num_labels = 4,
                           .locality = 1.0,
                           .seed = 31});
  auto tc = TransitiveClosure::Build(g.graph());
  CachedOracle cached(BuildInner(g.graph()));
  cached.stats().Reset();

  std::vector<NodeId> members{5, 11, 29, 40};
  auto targets = cached.SummarizeTargets(members);
  auto sources = cached.SummarizeSources(members);
  for (int pass = 0; pass < 2; ++pass) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      bool down = false, up = false;
      for (NodeId m : members) {
        down = down || tc.Reaches(v, m);
        up = up || tc.Reaches(m, v);
      }
      ASSERT_EQ(cached.ReachesSet(v, *targets), down) << v;
      ASSERT_EQ(cached.SetReaches(*sources, v), up) << v;
    }
  }
  // Second pass is pure hits: one cache entry per (summary, node).
  const IndexStats& st = cached.stats();
  EXPECT_EQ(st.cache_hits, 2ull * g.NumNodes());
  EXPECT_EQ(st.cache_misses, 2ull * g.NumNodes());

  // A fresh summary over the same members gets fresh ids — no stale
  // cross-summary hits, still correct.
  auto targets2 = cached.SummarizeTargets(members);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    bool down = false;
    for (NodeId m : members) down = down || tc.Reaches(v, m);
    ASSERT_EQ(cached.ReachesSet(v, *targets2), down) << v;
  }
}

// Concurrent mixed probing through one shared cache must stay
// coherent: every thread sees ground-truth answers throughout.
TEST(CachedOracleTest, ConcurrentProbesStayCorrect) {
  DataGraph g = RandomDigraph({.num_nodes = 70,
                               .avg_degree = 2.0,
                               .num_labels = 4,
                               .seed = 47});
  auto tc = TransitiveClosure::Build(g.graph());
  CachedOracleOptions small;
  small.capacity = 256;
  small.num_shards = 4;
  CachedOracle cached(BuildInner(g.graph()), small);

  auto worker = [&](NodeId stride) {
    for (int round = 0; round < 3; ++round) {
      for (NodeId a = 0; a < g.NumNodes(); ++a) {
        for (NodeId b = a % (stride + 1); b < g.NumNodes(); b += stride) {
          ASSERT_EQ(cached.Reaches(a, b), tc.Reaches(a, b));
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (NodeId stride : {1u, 2u, 3u, 5u}) {
    threads.emplace_back(worker, stride);
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace gtpq
