// Serving-runtime tests: ThreadPool scheduling, SharedEngineFactory
// stamping, QueryServer batch semantics, and the thread-confinement
// guarantees the runtime rests on (shared oracles with per-thread
// counters). The two-thread smoke tests are the ones the TSan CI job
// exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/engines.h"
#include "core/gtea.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "reachability/contour.h"
#include "runtime/query_server.h"
#include "runtime/thread_pool.h"
#include "tests/test_util.h"

namespace gtpq {
namespace {

using testing::SmallDag;

std::vector<Gtpq> MakeQueryBatch(const DataGraph& g, size_t count,
                                 uint64_t seed_base) {
  std::vector<Gtpq> queries;
  for (uint64_t seed = seed_base; queries.size() < count; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 5;
    qo.pc_probability = 0.3;
    qo.predicate_fraction = 0.3;
    qo.output_fraction = 0.8;
    qo.seed = seed;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (q.has_value()) queries.push_back(std::move(*q));
    if (seed > seed_base + 10 * count) break;  // generator starved
  }
  return queries;
}

TEST(ThreadPoolTest, RunsEveryTaskAcrossWorkers) {
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  std::mutex mu;
  std::set<int> seen_workers;
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        const int index = ThreadPool::CurrentWorkerIndex();
        EXPECT_GE(index, 0);
        EXPECT_LT(index, 4);
        {
          std::lock_guard<std::mutex> lock(mu);
          seen_workers.insert(index);
        }
        done.fetch_add(1);
      });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_FALSE(seen_workers.empty());
}

TEST(SharedEngineFactoryTest, StampsEnginesForEverySpec) {
  DataGraph g = SmallDag();
  for (const char* spec :
       {"gtea", "gtea:interval", "gtea:cached:contour",
        "gtea:sharded:interval", "naive", "twigstack", "twig2stack",
        "twigstackd", "hgjoin+", "hgjoin*", "decompose:twigstackd"}) {
    auto factory = SharedEngineFactory::Make(spec, g);
    ASSERT_NE(factory, nullptr) << spec;
    auto a = factory->Create();
    auto b = factory->Create();
    ASSERT_NE(a, nullptr) << spec;
    ASSERT_NE(b, nullptr) << spec;
    EXPECT_EQ(a->name(), b->name());
  }
  EXPECT_EQ(SharedEngineFactory::Make("nonsense", g), nullptr);
  EXPECT_EQ(SharedEngineFactory::Make("gtea:nonsense", g), nullptr);
}

TEST(SharedEngineFactoryTest, WorkersShareOneOracle) {
  // Two GTEA engines stamped from one factory must report identical
  // per-query #index: they share one prebuilt oracle rather than each
  // building (and possibly chain-decomposing differently) their own.
  DataGraph g = RandomDag({.num_nodes = 80,
                           .avg_degree = 2.2,
                           .num_labels = 5,
                           .locality = 1.0,
                           .seed = 21});
  auto factory = SharedEngineFactory::Make("gtea", g);
  ASSERT_NE(factory, nullptr);
  auto a = factory->Create();
  auto b = factory->Create();
  auto q = GenerateRandomQueryWithRetry(
      g, {.num_nodes = 5, .output_fraction = 1.0, .seed = 7});
  ASSERT_TRUE(q.has_value());
  auto ra = a->Evaluate(*q);
  auto rb = b->Evaluate(*q);
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(a->stats().index_lookups, b->stats().index_lookups);
}

TEST(QueryServerTest, BatchMatchesSequentialEngine) {
  DataGraph g = SmallDag();
  std::vector<Gtpq> queries = MakeQueryBatch(g, 12, 100);
  ASSERT_FALSE(queries.empty());

  GteaEngine reference(g);
  QueryServer server(g, {.num_threads = 3});
  EXPECT_EQ(server.num_threads(), 3u);
  EXPECT_EQ(server.engine_name(), "gtea[contour]");

  auto results = server.EvaluateBatch(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i], reference.Evaluate(queries[i])) << "query " << i;
  }
  EXPECT_EQ(server.stats().queries, queries.size());
}

TEST(QueryServerTest, ServesEverySpecFamily) {
  DataGraph g = SmallDag();
  std::vector<Gtpq> queries = MakeQueryBatch(g, 6, 400);
  ASSERT_FALSE(queries.empty());
  BruteForceEngine naive(g);
  for (const char* spec :
       {"gtea", "gtea:cached:contour", "gtea:sharded:interval", "naive",
        "twigstackd"}) {
    QueryServer server(g, {.num_threads = 2, .engine_spec = spec});
    auto results = server.EvaluateBatch(queries);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(results[i], naive.Evaluate(queries[i]))
          << spec << " query " << i;
    }
  }
}

TEST(QueryServerTest, SubmitResolvesFutures) {
  DataGraph g = SmallDag();
  std::vector<Gtpq> queries = MakeQueryBatch(g, 8, 900);
  ASSERT_FALSE(queries.empty());
  GteaEngine reference(g);

  QueryServer server(g, {.num_threads = 2});
  std::vector<std::future<QueryResult>> futures;
  for (const Gtpq& q : queries) futures.push_back(server.Submit(q));
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(futures[i].get(), reference.Evaluate(queries[i]));
  }
  EXPECT_EQ(server.stats().queries, queries.size());
}

TEST(QueryServerTest, StatsAggregateAcrossWorkers) {
  DataGraph g = RandomDag({.num_nodes = 100,
                           .avg_degree = 2.2,
                           .num_labels = 5,
                           .locality = 1.0,
                           .seed = 11});
  std::vector<Gtpq> queries = MakeQueryBatch(g, 16, 30);
  ASSERT_GE(queries.size(), 8u);

  QueryServer server(g, {.num_threads = 4});
  server.EvaluateBatch(queries);
  auto snapshot = server.stats();
  EXPECT_EQ(snapshot.queries, queries.size());
  EXPECT_GT(snapshot.input_nodes, 0u);
  EXPECT_GT(snapshot.index_lookups, 0u);

  // Aggregates must equal a sequential engine's sums: per-worker stat
  // confinement means nothing is double counted or lost.
  GteaEngine reference(g);
  uint64_t expect_input = 0, expect_index = 0;
  for (const Gtpq& q : queries) {
    reference.Evaluate(q);
    expect_input += reference.stats().input_nodes;
    expect_index += reference.stats().index_lookups;
  }
  EXPECT_EQ(snapshot.input_nodes, expect_input);
  EXPECT_EQ(snapshot.index_lookups, expect_index);
}

// Satellite check: per-query counters are instance-local and
// data-race-free when two engines share one oracle from two threads.
// Each thread must observe exactly the counters of its own engine —
// the same values a solo run produces — and TSan must stay quiet.
TEST(ThreadConfinementTest, SharedOracleStatsStayPerThread) {
  DataGraph g = RandomDag({.num_nodes = 120,
                           .avg_degree = 2.5,
                           .num_labels = 6,
                           .locality = 1.0,
                           .seed = 9});
  auto oracle = std::make_shared<const ContourIndex>(
      ContourIndex::Build(g.graph()));
  auto q1 = GenerateRandomQueryWithRetry(
      g, {.num_nodes = 5, .output_fraction = 1.0, .seed = 41});
  auto q2 = GenerateRandomQueryWithRetry(
      g, {.num_nodes = 6, .output_fraction = 1.0, .seed = 77});
  ASSERT_TRUE(q1.has_value());
  ASSERT_TRUE(q2.has_value());

  // Solo baselines.
  uint64_t solo1 = 0, solo2 = 0;
  QueryResult r1, r2;
  {
    GteaEngine e1(g, oracle);
    r1 = e1.Evaluate(*q1);
    solo1 = e1.stats().index_lookups;
    GteaEngine e2(g, oracle);
    r2 = e2.Evaluate(*q2);
    solo2 = e2.stats().index_lookups;
  }

  constexpr int kRounds = 25;
  auto run = [&](const Gtpq& q, const QueryResult& expected,
                 uint64_t solo, const char* tag) {
    GteaEngine engine(g, oracle);
    for (int i = 0; i < kRounds; ++i) {
      auto r = engine.Evaluate(q);
      ASSERT_EQ(r, expected) << tag;
      ASSERT_EQ(engine.stats().index_lookups, solo)
          << tag << ": cross-thread counter bleed";
    }
  };
  std::thread t1([&] { run(*q1, r1, solo1, "t1"); });
  std::thread t2([&] { run(*q2, r2, solo2, "t2"); });
  t1.join();
  t2.join();
}

// The same confinement must hold for engines whose shared index is not
// the GTEA oracle: TwigStackD resets the shared SSPI's counters inside
// Evaluate, which was a data race before stats became thread-local.
TEST(ThreadConfinementTest, TwigStackDSharedSspiSmoke) {
  DataGraph g = RandomTreeWithCrossEdges({.num_nodes = 150,
                                          .max_depth = 6,
                                          .cross_edge_fraction = 0.2,
                                          .num_labels = 5,
                                          .seed = 4});
  auto factory = SharedEngineFactory::Make("twigstackd", g);
  ASSERT_NE(factory, nullptr);
  auto q = GenerateRandomQueryWithRetry(
      g, {.num_nodes = 4, .output_fraction = 1.0, .seed = 15});
  ASSERT_TRUE(q.has_value());

  auto solo_engine = factory->Create();
  const QueryResult expected = solo_engine->Evaluate(*q);
  const uint64_t solo_index = solo_engine->stats().index_lookups;

  auto worker = [&] {
    auto engine = factory->Create();
    for (int i = 0; i < 25; ++i) {
      ASSERT_EQ(engine->Evaluate(*q), expected);
      ASSERT_EQ(engine->stats().index_lookups, solo_index);
    }
  };
  std::thread t1(worker);
  std::thread t2(worker);
  t1.join();
  t2.join();
}

}  // namespace
}  // namespace gtpq
