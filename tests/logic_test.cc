#include <gtest/gtest.h>

#include "common/rng.h"
#include "logic/cnf.h"
#include "logic/formula.h"
#include "logic/sat.h"

namespace gtpq {
namespace logic {
namespace {

FormulaRef V(int i) { return Formula::Var(i); }

TEST(FormulaTest, ConstantsAndNormalization) {
  EXPECT_TRUE(Formula::True()->is_true());
  EXPECT_TRUE(Formula::False()->is_false());
  EXPECT_TRUE(Formula::And(Formula::True(), Formula::True())->is_true());
  EXPECT_TRUE(Formula::And(V(0), Formula::False())->is_false());
  EXPECT_TRUE(Formula::Or(V(0), Formula::True())->is_true());
  // Neutral elements are dropped.
  EXPECT_EQ(ToString(Formula::And(V(0), Formula::True())), "p0");
  EXPECT_EQ(ToString(Formula::Or(V(1), Formula::False())), "p1");
}

TEST(FormulaTest, FlatteningAndDedup) {
  auto f = Formula::And(Formula::And(V(0), V(1)), Formula::And(V(1), V(2)));
  EXPECT_EQ(f->children().size(), 3u);
  EXPECT_EQ(ToString(f), "p0 & p1 & p2");
}

TEST(FormulaTest, DoubleNegation) {
  EXPECT_EQ(ToString(Formula::Not(Formula::Not(V(3)))), "p3");
  EXPECT_TRUE(Formula::Not(Formula::False())->is_true());
}

TEST(FormulaTest, Evaluate) {
  auto f = Formula::Or(Formula::And(V(0), Formula::Not(V(1))), V(2));
  std::vector<char> a{1, 0, 0};
  EXPECT_TRUE(Evaluate(f, a));
  std::vector<char> b{1, 1, 0};
  EXPECT_FALSE(Evaluate(f, b));
  std::vector<char> c{0, 1, 1};
  EXPECT_TRUE(Evaluate(f, c));
}

TEST(FormulaTest, CollectVars) {
  auto f = Formula::Or(Formula::And(V(5), Formula::Not(V(1))), V(3));
  EXPECT_EQ(CollectVars(f), (std::vector<int>{1, 3, 5}));
}

TEST(FormulaTest, SubstituteConst) {
  auto f = Formula::Or(Formula::And(V(0), V(1)), V(2));
  EXPECT_EQ(ToString(SubstituteConst(f, 2, false)), "p0 & p1");
  EXPECT_TRUE(SubstituteConst(f, 2, true)->is_true());
}

TEST(FormulaTest, SubstituteFormula) {
  std::unordered_map<int, FormulaRef> map;
  map.emplace(0, Formula::And(V(7), V(8)));
  auto f = Substitute(Formula::Or(V(0), V(1)), map);
  EXPECT_EQ(ToString(f), "(p7 & p8) | p1");
}

TEST(FormulaTest, RenameVars) {
  auto f = Formula::And(V(0), Formula::Not(V(1)));
  auto g = RenameVars(f, {{0, 10}, {1, 11}});
  EXPECT_EQ(ToString(g), "p10 & !p11");
}

TEST(FormulaTest, ToNnf) {
  auto f = Formula::Not(Formula::And(V(0), Formula::Or(V(1), V(2))));
  EXPECT_EQ(ToString(ToNnf(f)), "!p0 | (!p1 & !p2)");
}

TEST(FormulaTest, SimplifyComplementsAndAbsorption) {
  EXPECT_TRUE(Simplify(Formula::And(V(0), Formula::Not(V(0))))->is_false());
  EXPECT_TRUE(Simplify(Formula::Or(V(0), Formula::Not(V(0))))->is_true());
  auto absorbed = Simplify(Formula::Or(V(0), Formula::And(V(0), V(1))));
  EXPECT_EQ(ToString(absorbed), "p0");
}

TEST(FormulaTest, ParserRoundTrip) {
  auto intern = [](const std::string& name) {
    return std::stoi(name.substr(1));
  };
  for (const char* text :
       {"p0", "p0 & p1", "p0 | p1 & p2", "!(p0 | p1)", "p0 & !p1 | p2",
        "((p0))", "1", "0", "p0 & 1"}) {
    auto f = ParseFormula(text, intern);
    ASSERT_TRUE(f.ok()) << text << ": " << f.status().ToString();
    auto round = ParseFormula(ToString(*f), intern);
    ASSERT_TRUE(round.ok());
    EXPECT_TRUE(StructurallyEqual(*f, *round)) << text;
  }
}

TEST(FormulaTest, ParserErrors) {
  auto intern = [](const std::string&) { return 0; };
  EXPECT_FALSE(ParseFormula("", intern).ok());
  EXPECT_FALSE(ParseFormula("p0 &", intern).ok());
  EXPECT_FALSE(ParseFormula("(p0", intern).ok());
  EXPECT_FALSE(ParseFormula("p0 p1", intern).ok());
  EXPECT_FALSE(ParseFormula("|p1", intern).ok());
}

TEST(CnfTest, DistributionMatchesSemantics) {
  Rng rng(42);
  for (int round = 0; round < 40; ++round) {
    // Random formula over 5 vars, depth 3.
    std::function<FormulaRef(int)> gen = [&](int depth) -> FormulaRef {
      if (depth == 0 || rng.NextBool(0.3)) {
        FormulaRef v = V(static_cast<int>(rng.NextBounded(5)));
        return rng.NextBool(0.3) ? Formula::Not(v) : v;
      }
      FormulaRef a = gen(depth - 1);
      FormulaRef b = gen(depth - 1);
      return rng.NextBool() ? Formula::And(a, b) : Formula::Or(a, b);
    };
    FormulaRef f = gen(3);
    FormulaRef cnf = CnfToFormula(ToCnfByDistribution(f));
    FormulaRef dnf = DnfToFormula(ToDnfByDistribution(f));
    for (uint32_t mask = 0; mask < 32; ++mask) {
      std::vector<char> a(5);
      for (int i = 0; i < 5; ++i) a[i] = (mask >> i) & 1;
      ASSERT_EQ(Evaluate(f, a), Evaluate(cnf, a)) << ToString(f);
      ASSERT_EQ(Evaluate(f, a), Evaluate(dnf, a)) << ToString(f);
    }
  }
}

TEST(CnfTest, TseitinEquisatisfiable) {
  Rng rng(77);
  for (int round = 0; round < 60; ++round) {
    std::function<FormulaRef(int)> gen = [&](int depth) -> FormulaRef {
      if (depth == 0 || rng.NextBool(0.3)) {
        FormulaRef v = V(static_cast<int>(rng.NextBounded(4)));
        return rng.NextBool(0.4) ? Formula::Not(v) : v;
      }
      FormulaRef a = gen(depth - 1);
      FormulaRef b = gen(depth - 1);
      return rng.NextBool() ? Formula::And(a, b) : Formula::Or(a, b);
    };
    // Random formula conjoined with random literals to get a mix of SAT
    // and UNSAT instances.
    FormulaRef f = gen(3);
    if (rng.NextBool(0.5)) {
      f = Formula::And(f, Formula::Not(gen(2)));
    }
    bool brute_sat = false;
    for (uint32_t mask = 0; mask < 16 && !brute_sat; ++mask) {
      std::vector<char> a(4);
      for (int i = 0; i < 4; ++i) a[i] = (mask >> i) & 1;
      brute_sat = Evaluate(f, a);
    }
    ASSERT_EQ(IsSatisfiable(f), brute_sat) << ToString(f);
  }
}

TEST(CnfTest, ExponentialDistributionBlowup) {
  // (a1|b1) & (a2|b2) & ... distributes to 2^n DNF cubes — the cost the
  // paper attributes to OR-block normalization of AND/OR-twigs.
  std::vector<FormulaRef> clauses;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    clauses.push_back(Formula::Or(V(2 * i), V(2 * i + 1)));
  }
  auto dnf = ToDnfByDistribution(Formula::And(std::move(clauses)));
  EXPECT_EQ(dnf.cubes.size(), size_t{1} << n);
}

TEST(SatTest, TautologyAndImplication) {
  auto f = Formula::Or(V(0), Formula::Not(V(0)));
  EXPECT_TRUE(IsTautology(f));
  EXPECT_FALSE(IsTautology(V(0)));
  EXPECT_TRUE(Implies(Formula::And(V(0), V(1)), V(0)));
  EXPECT_FALSE(Implies(V(0), Formula::And(V(0), V(1))));
  EXPECT_TRUE(Equivalent(Formula::Not(Formula::And(V(0), V(1))),
                         Formula::Or(Formula::Not(V(0)),
                                     Formula::Not(V(1)))));
}

TEST(SatTest, SolveProducesModel) {
  auto f = Formula::And(Formula::Or(V(0), V(1)), Formula::Not(V(0)));
  auto model = SolveFormula(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_FALSE((*model)[0]);
  EXPECT_TRUE((*model)[1]);
  EXPECT_FALSE(SolveFormula(Formula::And(V(0), Formula::Not(V(0))))
                   .has_value());
}

TEST(SatTest, EnumerateModels) {
  auto f = Formula::Or(V(0), V(1));
  std::vector<Model> models;
  size_t count = EnumerateModels(
      f, {0, 1}, [&models](const Model& m) { models.push_back(m); });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(models.size(), 3u);
}

TEST(SatTest, ConstantFormulas) {
  EXPECT_TRUE(IsSatisfiable(Formula::True()));
  EXPECT_FALSE(IsSatisfiable(Formula::False()));
  EXPECT_TRUE(IsTautology(Formula::True()));
  EXPECT_FALSE(IsTautology(Formula::False()));
}

}  // namespace
}  // namespace logic
}  // namespace gtpq
