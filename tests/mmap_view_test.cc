// Zero-copy serving suite: for every factory-constructible spec, an
// index loaded through the mmap view loader (mmap:<path>, borrowing
// flat arrays straight from a read-only shared file mapping) must be
// probe-for-probe identical to the same file loaded onto the heap
// (file:<path>); the mapping must actually be MAP_SHARED | PROT_READ;
// several engines/threads must be able to serve off one mapped index
// concurrently (ASan/TSan jobs run this file); and an epoch chain of
// delta: snapshots must layer over the immutable mapped view the same
// way it layers over a built index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/engines.h"
#include "dynamic/delta_overlay.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "reachability/factory.h"
#include "reachability/transitive_closure.h"
#include "runtime/engine_factory.h"
#include "storage/index_io.h"
#include "tests/test_util.h"

namespace gtpq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gtpq_mmap_" + name +
         std::string(storage::kIndexFileExtension);
}

DataGraph TestDag(uint64_t seed = 3) {
  return RandomDag({.num_nodes = 60,
                    .avg_degree = 2.5,
                    .num_labels = 5,
                    .locality = 1.0,
                    .seed = seed});
}

DataGraph TestDigraph(uint64_t seed = 5) {
  return RandomDigraph(
      {.num_nodes = 50, .avg_degree = 2.0, .num_labels = 5, .seed = seed});
}

// ------------------------------------------- heap vs mmap differential

class MmapDifferentialTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(MmapDifferentialTest, ViewLoadAnswersExactlyLikeHeapLoad) {
  for (bool cyclic : {false, true}) {
    const DataGraph g = cyclic ? TestDigraph() : TestDag();
    auto built =
        MakeReachabilityIndex(std::string_view(GetParam()), g.graph());
    ASSERT_NE(built, nullptr) << GetParam();
    const std::string path = TempPath("diff");
    ASSERT_TRUE(
        storage::SaveReachabilityIndex(*built, g.graph(), path).ok());

    auto heap = storage::LoadReachabilityIndex(path, g.graph());
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    auto view = storage::LoadReachabilityIndexView(path, g.graph());
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ((*view)->name(), GetParam());

    // Probe-for-probe identity on every pair, both against each other
    // and against the golden closure.
    const auto tc = TransitiveClosure::Build(g.graph());
    for (NodeId a = 0; a < g.NumNodes(); ++a) {
      for (NodeId b = 0; b < g.NumNodes(); ++b) {
        const bool expected = tc.Reaches(a, b);
        ASSERT_EQ((*heap)->Reaches(a, b), expected)
            << GetParam() << " heap (" << a << ", " << b << ")";
        ASSERT_EQ((*view)->Reaches(a, b), expected)
            << GetParam() << " mmap (" << a << ", " << b << ")";
      }
    }
    // The set API GTEA consumes, on a fixed member set.
    std::vector<NodeId> members;
    for (NodeId v = 0; v < g.NumNodes(); v += 3) members.push_back(v);
    auto heap_targets = (*heap)->SummarizeTargets(members);
    auto view_targets = (*view)->SummarizeTargets(members);
    auto heap_sources = (*heap)->SummarizeSources(members);
    auto view_sources = (*view)->SummarizeSources(members);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_EQ((*view)->ReachesSet(v, *view_targets),
                (*heap)->ReachesSet(v, *heap_targets))
          << GetParam();
      ASSERT_EQ((*view)->SetReaches(*view_sources, v),
                (*heap)->SetReaches(*heap_sources, v))
          << GetParam();
    }
    std::remove(path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, MmapDifferentialTest,
    ::testing::ValuesIn(AllReachabilitySpecs()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), ':', '_');
      return name;
    });

// ----------------------------------------------- factory spec plumbing

TEST(MmapSpecTest, FactoryServesTheMappedIndexUnderTheSameRules) {
  const DataGraph g = TestDag();
  auto built =
      MakeReachabilityIndex(std::string_view("contour"), g.graph());
  const std::string path = TempPath("spec");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*built, g.graph(), path).ok());
  const std::string spec = "mmap:" + path;

  EXPECT_TRUE(IsValidReachabilitySpec(spec));
  EXPECT_TRUE(IsValidReachabilitySpec("cached:" + spec));
  EXPECT_FALSE(IsValidReachabilitySpec("mmap:" + path + ".missing"));
  // Same composition rules as file:: no mmap beneath sharded: (the
  // fingerprint covers the whole graph, not a shard subgraph) or
  // beneath delta: (compaction must rebuild through the spec).
  EXPECT_FALSE(IsValidReachabilitySpec("sharded:" + spec));
  EXPECT_FALSE(IsValidReachabilitySpec("delta:" + spec));
  EXPECT_EQ(MakeReachabilityIndex(std::string_view("sharded:" + spec),
                                  g.graph()),
            nullptr);

  auto oracle = MakeReachabilityIndex(std::string_view(spec), g.graph());
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->name(), "contour");
  const auto tc = TransitiveClosure::Build(g.graph());
  for (NodeId a = 0; a < g.NumNodes(); ++a) {
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      ASSERT_EQ(oracle->Reaches(a, b), tc.Reaches(a, b));
    }
  }

  // The fingerprint guard holds for the mmap loader too.
  const DataGraph other = TestDag(/*seed=*/77);
  EXPECT_EQ(MakeReachabilityIndex(std::string_view(spec), other.graph()),
            nullptr);
  std::remove(path.c_str());
}

#if defined(__linux__)
TEST(MmapSpecTest, MappingIsSharedAndReadOnly) {
  const DataGraph g = TestDag();
  auto built =
      MakeReachabilityIndex(std::string_view("interval"), g.graph());
  const std::string path = TempPath("maps");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*built, g.graph(), path).ok());

  auto view = storage::LoadReachabilityIndexView(path, g.graph());
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  // /proc/self/maps must list the index file as "r--s": PROT_READ with
  // no write/exec, MAP_SHARED — the property that lets N server
  // processes mapping the same file reference one set of physical
  // pages.
  std::ifstream maps("/proc/self/maps");
  ASSERT_TRUE(maps.good());
  bool found = false;
  std::string line;
  while (std::getline(maps, line)) {
    if (line.find(path) == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find(" r--s"), std::string::npos) << line;
  }
  EXPECT_TRUE(found) << "no mapping of " << path << " in /proc/self/maps";

  // The mapping outlives a rename over the path (inode pinned) — the
  // invariant `gteactl apply`'s atomic re-save relies on.
  const std::string replacement = path + ".new";
  ASSERT_TRUE(storage::SaveReachabilityIndex(*built, g.graph(),
                                             replacement)
                  .ok());
  ASSERT_EQ(std::rename(replacement.c_str(), path.c_str()), 0);
  const auto tc = TransitiveClosure::Build(g.graph());
  for (NodeId a = 0; a < g.NumNodes(); a += 7) {
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      ASSERT_EQ((*view)->Reaches(a, b), tc.Reaches(a, b));
    }
  }
  std::remove(path.c_str());
}
#endif  // __linux__

// ------------------------------------------------- shared-mapping serving

TEST(MmapSharingTest, TwoEngineFactoriesServeOffOneSavedIndex) {
  const DataGraph g = TestDag(/*seed=*/31);
  auto built = MakeReachabilityIndex(std::string_view("sharded:interval"),
                                     g.graph());
  const std::string path = TempPath("sharing");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*built, g.graph(), path).ok());

  // Two independent QueryServer-style stacks (each SharedEngineFactory
  // is what a NetServer's runtime stamps its workers from), both
  // serving the same .gtpqidx through the zero-copy loader.
  auto factory_a = SharedEngineFactory::Make("gtea:mmap:" + path, g);
  auto factory_b = SharedEngineFactory::Make("gtea:mmap:" + path, g);
  ASSERT_NE(factory_a, nullptr);
  ASSERT_NE(factory_b, nullptr);
  auto worker_a = factory_a->Create();
  auto worker_b = factory_b->Create();
  ASSERT_NE(worker_a, nullptr);
  ASSERT_NE(worker_b, nullptr);

  BruteForceEngine naive(g);
  int evaluated = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 5;
    qo.pc_probability = 0.3;
    qo.output_fraction = 0.7;
    qo.seed = seed * 17 + 3;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (!q.has_value()) continue;
    ++evaluated;
    const auto expected = naive.Evaluate(*q);
    ASSERT_EQ(worker_a->Evaluate(*q), expected) << "seed " << seed;
    ASSERT_EQ(worker_b->Evaluate(*q), expected) << "seed " << seed;
  }
  EXPECT_GT(evaluated, 3);
  std::remove(path.c_str());
}

TEST(MmapSharingTest, ConcurrentProbesOverOneMappedOracle) {
  const DataGraph g = TestDigraph(/*seed=*/9);
  auto built =
      MakeReachabilityIndex(std::string_view("three_hop"), g.graph());
  const std::string path = TempPath("threads");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*built, g.graph(), path).ok());
  auto view = storage::LoadReachabilityIndexView(path, g.graph());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const ReachabilityOracle& oracle = **view;
  const auto tc = TransitiveClosure::Build(g.graph());

  // One mapped oracle, many probing threads: the borrowed views are
  // immutable and the per-thread stats slots keep counters private, so
  // this must be race-free under TSan.
  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      for (NodeId a = static_cast<NodeId>(t); a < g.NumNodes(); a += 4) {
        for (NodeId b = 0; b < g.NumNodes(); ++b) {
          if (oracle.Reaches(a, b) != tc.Reaches(a, b)) ++mismatches[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0) << t;
  std::remove(path.c_str());
}

// ------------------------------------------- delta epochs over the view

TEST(MmapDeltaTest, EpochSnapshotsLayerOverTheImmutableMapping) {
  const DataGraph g = TestDag(/*seed=*/41);
  auto built =
      MakeReachabilityIndex(std::string_view("contour"), g.graph());
  const std::string path = TempPath("delta");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*built, g.graph(), path).ok());
  auto view = storage::LoadReachabilityIndexView(path, g.graph());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  std::shared_ptr<const ReachabilityOracle> mapped(view.TakeValue());

  // Live updates over a served mmap index: the overlay mutates nothing
  // under the mapping — the delta layers above it, exactly as over a
  // built index.
  auto overlay = std::make_shared<const DeltaOverlayOracle>(
      mapped, &g.graph());
  // Connect two nodes with no path between them yet.
  NodeId from = kInvalidNode, to = kInvalidNode;
  for (NodeId a = 0; a < g.NumNodes() && from == kInvalidNode; ++a) {
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      if (a != b && !mapped->Reaches(a, b) && !mapped->Reaches(b, a)) {
        from = a;
        to = b;
        break;
      }
    }
  }
  ASSERT_NE(from, kInvalidNode);
  UpdateBatch batch;
  batch.add_edges.push_back(EdgeRef{from, to});
  auto next = overlay->WithUpdates(batch);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_TRUE((*next)->Reaches(from, to));
  // The old snapshot and the base mapping still answer the old truth.
  EXPECT_FALSE(overlay->Reaches(from, to));
  EXPECT_FALSE(mapped->Reaches(from, to));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gtpq
