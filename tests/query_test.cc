#include <gtest/gtest.h>

#include "query/query_generator.h"
#include "query/query_parser.h"
#include "test_util.h"

namespace gtpq {
namespace {

using logic::Formula;
using testing::SmallDag;

TEST(AttributePredicateTest, MatchSemantics) {
  DataGraph g(2);
  g.SetLabel(0, 3);
  g.SetAttr(0, "year", AttrValue(int64_t{2005}));
  g.Finalize();
  AttrId year = g.attr_names()->Intern("year");

  AttributePredicate p;
  p.AddAtom(year, CmpOp::kGe, AttrValue(int64_t{2000}));
  p.AddAtom(year, CmpOp::kLe, AttrValue(int64_t{2010}));
  EXPECT_TRUE(p.Matches(g, 0));
  EXPECT_FALSE(p.Matches(g, 1));  // attribute absent

  AttributePredicate strict;
  strict.AddAtom(year, CmpOp::kGt, AttrValue(int64_t{2005}));
  EXPECT_FALSE(strict.Matches(g, 0));
}

TEST(AttributePredicateTest, Satisfiability) {
  AttrId a = 1;
  {
    AttributePredicate p;
    p.AddAtom(a, CmpOp::kGe, AttrValue(int64_t{5}));
    p.AddAtom(a, CmpOp::kLe, AttrValue(int64_t{3}));
    EXPECT_FALSE(p.IsSatisfiable());
  }
  {
    AttributePredicate p;
    p.AddAtom(a, CmpOp::kGe, AttrValue(int64_t{5}));
    p.AddAtom(a, CmpOp::kLe, AttrValue(int64_t{5}));
    EXPECT_TRUE(p.IsSatisfiable());
    p.AddAtom(a, CmpOp::kNe, AttrValue(int64_t{5}));
    EXPECT_FALSE(p.IsSatisfiable());
  }
  {
    AttributePredicate p;
    p.AddAtom(a, CmpOp::kEq, AttrValue(int64_t{2}));
    p.AddAtom(a, CmpOp::kEq, AttrValue(int64_t{3}));
    EXPECT_FALSE(p.IsSatisfiable());
  }
  {
    AttributePredicate p;
    p.AddAtom(a, CmpOp::kGt, AttrValue(int64_t{1}));
    p.AddAtom(a, CmpOp::kLt, AttrValue(int64_t{2}));
    EXPECT_TRUE(p.IsSatisfiable());  // dense domain
  }
  EXPECT_TRUE(AttributePredicate().IsSatisfiable());
}

TEST(AttributePredicateTest, Entailment) {
  AttrId year = 1;
  AttributePredicate weak;  // year <= 2010
  weak.AddAtom(year, CmpOp::kLe, AttrValue(int64_t{2010}));
  AttributePredicate strong;  // year <= 2005
  strong.AddAtom(year, CmpOp::kLe, AttrValue(int64_t{2005}));
  EXPECT_TRUE(weak.EntailedBy(strong));
  EXPECT_FALSE(strong.EntailedBy(weak));
  // Equality requires identical constants.
  AttributePredicate eq1, eq2;
  eq1.AddAtom(year, CmpOp::kEq, AttrValue(int64_t{7}));
  eq2.AddAtom(year, CmpOp::kEq, AttrValue(int64_t{7}));
  EXPECT_TRUE(eq1.EntailedBy(eq2));
}

TEST(QueryBuilderTest, ValidatesStructure) {
  QueryBuilder b;
  QNodeId r = b.AddRoot("r", AttributePredicate());
  QNodeId p = b.AddPredicate(r, EdgeType::kDescendant, "p",
                             AttributePredicate());
  b.MarkOutput(r);
  // fs over a non-predicate-child variable must be rejected.
  b.SetStructural(p, Formula::Var(static_cast<int>(r)));
  EXPECT_FALSE(b.Build().ok());
  b.SetStructural(p, Formula::True());
  EXPECT_TRUE(b.Build().ok());
}

TEST(QueryBuilderTest, RequiresOutput) {
  QueryBuilder b;
  b.AddRoot("r", AttributePredicate());
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, ExtendedPredicate) {
  QueryBuilder b;
  QNodeId r = b.AddRoot("r", AttributePredicate());
  QNodeId bb = b.AddBackbone(r, EdgeType::kDescendant, "b",
                             AttributePredicate());
  QNodeId p = b.AddPredicate(r, EdgeType::kDescendant, "p",
                             AttributePredicate());
  b.SetStructural(r, Formula::Not(Formula::Var(static_cast<int>(p))));
  b.MarkOutput(r);
  Gtpq q = b.Build().TakeValue();
  auto fext = q.ExtendedPredicate(r);
  // fext(r) = p_b & !p_p.
  auto vars = logic::CollectVars(fext);
  EXPECT_EQ(vars, (std::vector<int>{static_cast<int>(bb),
                                    static_cast<int>(p)}));
  EXPECT_FALSE(q.IsConjunctive());
  EXPECT_FALSE(q.IsUnionConjunctive());
}

TEST(QueryBuilderTest, ClassKinds) {
  QueryBuilder b;
  QNodeId r = b.AddRoot("r", AttributePredicate());
  QNodeId p1 = b.AddPredicate(r, EdgeType::kDescendant, "p1",
                              AttributePredicate());
  QNodeId p2 = b.AddPredicate(r, EdgeType::kDescendant, "p2",
                              AttributePredicate());
  b.MarkOutput(r);
  b.SetStructural(r, Formula::And(Formula::Var(static_cast<int>(p1)),
                                  Formula::Var(static_cast<int>(p2))));
  EXPECT_TRUE(b.Build()->IsConjunctive());
  b.SetStructural(r, Formula::Or(Formula::Var(static_cast<int>(p1)),
                                 Formula::Var(static_cast<int>(p2))));
  Gtpq q = b.Build().TakeValue();
  EXPECT_FALSE(q.IsConjunctive());
  EXPECT_TRUE(q.IsUnionConjunctive());
}

TEST(QueryParserTest, RoundTrip) {
  const char* text = R"(
# Example query
backbone root root *
backbone mid root ad
predicate pa mid pc
predicate pb mid ad
attr root label=3
attr pa year>=2000 year<=2010
attr pb name="alice"
fs mid = pa & !pb
output mid
)";
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->NumNodes(), 4u);
  EXPECT_EQ(q->outputs().size(), 2u);
  // Render + reparse must preserve structure.
  auto names = std::make_shared<AttrNames>();
  auto q1 = ParseQuery(text, names);
  ASSERT_TRUE(q1.ok());
  auto q2 = ParseQuery(q1->ToString(*names), names);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->NumNodes(), q1->NumNodes());
  EXPECT_EQ(q2->outputs(), q1->outputs());
  EXPECT_EQ(q2->ToString(*names), q1->ToString(*names));
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("backbone a nowhere ad *\n").ok());
  EXPECT_FALSE(ParseQuery("predicate a root\n").ok());  // pred root
  EXPECT_FALSE(ParseQuery("backbone a root *\nfs a = ghost\n").ok());
  EXPECT_FALSE(ParseQuery("backbone a root *\nattr a year?2000\n").ok());
  EXPECT_FALSE(ParseQuery("wibble\n").ok());
}

TEST(QueryGeneratorTest, ProducesValidQueries) {
  DataGraph g = SmallDag();
  int produced = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    QueryGenOptions o;
    o.num_nodes = 4;
    o.predicate_fraction = 0.4;
    o.disjunction_probability = 0.5;
    o.negation_probability = 0.3;
    o.pc_probability = 0.3;
    o.seed = seed;
    auto q = GenerateRandomQuery(g, o);
    if (!q.has_value()) continue;
    ++produced;
    EXPECT_TRUE(q->Validate().ok());
    EXPECT_EQ(q->NumNodes(), 4u);
  }
  EXPECT_GT(produced, 10);
}

TEST(GtpqTest, OrdersAndSubtree) {
  QueryBuilder b;
  QNodeId r = b.AddRoot("r", AttributePredicate());
  QNodeId a = b.AddBackbone(r, EdgeType::kDescendant, "a",
                            AttributePredicate());
  QNodeId c = b.AddBackbone(a, EdgeType::kChild, "c",
                            AttributePredicate());
  b.MarkOutput(c);
  Gtpq q = b.Build().TakeValue();
  EXPECT_EQ(q.TopDownOrder(), (std::vector<QNodeId>{r, a, c}));
  EXPECT_EQ(q.BottomUpOrder(), (std::vector<QNodeId>{c, a, r}));
  EXPECT_TRUE(q.IsAncestor(r, c));
  EXPECT_FALSE(q.IsAncestor(c, r));
  EXPECT_EQ(q.Subtree(a), (std::vector<QNodeId>{a, c}));
  EXPECT_EQ(q.DepthOf(c), 2u);
}

}  // namespace
}  // namespace gtpq
