// Dynamic-update coverage: GraphDelta validation/atomicity, the
// delta-overlay oracle differentially against a rebuild-from-scratch
// golden closure (insert-heavy, delete-heavy, and compaction-triggering
// schedules), persistence of pending deltas, the update-file format,
// and the serving runtime's epoch snapshots — including the randomized
// differential at 1 and 8 threads and the concurrent
// ApplyUpdates()+EvaluateBatch() consistency check the TSan CI job
// runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"

#include "dynamic/delta_overlay.h"
#include "dynamic/graph_delta.h"
#include "dynamic/stream_gen.h"
#include "dynamic/update_io.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "reachability/factory.h"
#include "reachability/transitive_closure.h"
#include "runtime/query_server.h"
#include "storage/index_io.h"
#include "tests/test_util.h"

namespace gtpq {
namespace {

using testing::MakeGraph;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gtpq_update_" + name +
         std::string(storage::kIndexFileExtension);
}

UpdateBatch EdgeAdd(std::vector<EdgeRef> edges) {
  UpdateBatch b;
  b.add_edges = std::move(edges);
  return b;
}

UpdateBatch EdgeRemove(std::vector<EdgeRef> edges) {
  UpdateBatch b;
  b.remove_edges = std::move(edges);
  return b;
}

UpdateBatch NodeRemove(std::vector<NodeId> nodes) {
  UpdateBatch b;
  b.remove_nodes = std::move(nodes);
  return b;
}

/// Schedule shorthand over the shared generator (dynamic/stream_gen.h).
std::vector<UpdateBatch> GenerateStream(const DataGraph& base,
                                        size_t rounds, size_t ops,
                                        double del_ratio,
                                        uint64_t seed) {
  UpdateStreamOptions options;
  options.rounds = rounds;
  options.ops_per_round = ops;
  options.del_ratio = del_ratio;
  options.seed = seed;
  return GenerateUpdateStream(base, options);
}

void ExpectOracleMatchesGolden(const ReachabilityOracle& oracle,
                               const Digraph& golden_graph,
                               const std::string& context) {
  const TransitiveClosure golden = TransitiveClosure::Build(golden_graph);
  const size_t n = golden_graph.NumNodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      ASSERT_EQ(oracle.Reaches(a, b), golden.Reaches(a, b))
          << context << ": " << oracle.name() << " disagrees on (" << a
          << ", " << b << ")";
    }
  }
}

// --------------------------------------------------- GraphDelta basics

TEST(GraphDeltaTest, ValidatesAndStaysAtomicOnRejection) {
  // 0 -> 1 -> 2
  DataGraph g = MakeGraph(3, {0, 1, 2}, {{0, 1}, {1, 2}});
  GraphDelta delta(g.NumNodes());

  // Duplicate of a base edge.
  EXPECT_EQ(delta.Apply(g.graph(), EdgeAdd({{0, 1}})).code(),
            StatusCode::kAlreadyExists);
  // Removal of an absent edge.
  EXPECT_EQ(delta.Apply(g.graph(), EdgeRemove({{2, 0}})).code(),
            StatusCode::kNotFound);
  // Out-of-range endpoint.
  EXPECT_EQ(delta.Apply(g.graph(), EdgeAdd({{0, 9}})).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(delta.Apply(g.graph(), NodeRemove({7})).code(),
            StatusCode::kOutOfRange);
  // A batch that fails halfway must leave the delta untouched.
  UpdateBatch mixed;
  mixed.add_edges = {{2, 0}, {2, 0}};  // second add duplicates the first
  EXPECT_EQ(delta.Apply(g.graph(), mixed).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.version(), 0u);

  // Valid compound batch: new node, edge into it, base edge removed.
  UpdateBatch ok;
  ok.add_nodes = {5};
  ok.add_edges = {{2, 3}};
  ok.remove_edges = {{0, 1}};
  ASSERT_TRUE(delta.Apply(g.graph(), ok).ok());
  EXPECT_EQ(delta.NumNodes(), 4u);
  EXPECT_EQ(delta.NumAddedEdges(), 1u);
  EXPECT_EQ(delta.NumRemovedEdges(), 1u);
  EXPECT_EQ(delta.version(), 1u);

  // Touching a removed vertex is rejected; removing it twice too.
  ASSERT_TRUE(delta.Apply(g.graph(), NodeRemove({1})).ok());
  EXPECT_EQ(delta.Apply(g.graph(), EdgeAdd({{0, 1}})).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(delta.Apply(g.graph(), NodeRemove({1})).code(),
            StatusCode::kFailedPrecondition);
}

TEST(GraphDeltaTest, MaterializesCombinedView) {
  DataGraph g = MakeGraph(3, {7, 8, 9}, {{0, 1}, {1, 2}});
  GraphDelta delta(g.NumNodes());
  UpdateBatch batch;
  batch.add_nodes = {42};
  batch.add_edges = {{2, 3}, {3, 0}};
  batch.remove_edges = {{0, 1}};
  ASSERT_TRUE(delta.Apply(g.graph(), batch).ok());

  const Digraph materialized = delta.MaterializeDigraph(g.graph());
  EXPECT_EQ(materialized.NumNodes(), 4u);
  EXPECT_FALSE(materialized.HasEdge(0, 1));
  EXPECT_TRUE(materialized.HasEdge(1, 2));
  EXPECT_TRUE(materialized.HasEdge(2, 3));
  EXPECT_TRUE(materialized.HasEdge(3, 0));

  const DataGraph data = delta.MaterializeDataGraph(g);
  EXPECT_EQ(data.NumNodes(), 4u);
  EXPECT_EQ(data.LabelOf(0), 7);
  EXPECT_EQ(data.LabelOf(3), 42);
  // Attribute namespace is shared, so interned ids stay stable.
  EXPECT_EQ(data.attr_names_ptr().get(), g.attr_names_ptr().get());

  // Vertex removal detaches and tombstones, but keeps the id space.
  ASSERT_TRUE(delta.Apply(g.graph(), NodeRemove({1})).ok());
  const DataGraph after = delta.MaterializeDataGraph(g);
  EXPECT_EQ(after.NumNodes(), 4u);
  EXPECT_EQ(after.LabelOf(1), kRemovedNodeLabel);
  EXPECT_EQ(after.OutNeighbors(1).size(), 0u);
  EXPECT_EQ(after.InNeighbors(1).size(), 0u);

  // Re-adding a removed base edge resurrects it.
  GraphDelta resurrect(g.NumNodes());
  ASSERT_TRUE(resurrect.Apply(g.graph(), EdgeRemove({{0, 1}})).ok());
  ASSERT_TRUE(resurrect.Apply(g.graph(), EdgeAdd({{0, 1}})).ok());
  EXPECT_TRUE(
      resurrect.MaterializeDigraph(g.graph()).HasEdge(0, 1));
  EXPECT_EQ(resurrect.NumAddedEdges(), 0u);
  EXPECT_EQ(resurrect.NumRemovedEdges(), 0u);
}

// delta: composes above sharded:, never beneath it: shard sub-indexes
// are built over transient induced-subgraph objects an overlay would
// dangle on. file: is rejected beneath delta: (compaction cannot
// rebuild from a file on a mutated graph).
TEST(DeltaSpecTest, RejectsUnservableCompositions) {
  DataGraph g = MakeGraph(3, {0, 1, 2}, {{0, 1}, {1, 2}});
  for (const char* spec :
       {"sharded:delta:contour", "sharded:cached:delta:contour",
        "delta:file:nowhere.gtpqidx"}) {
    EXPECT_FALSE(IsValidReachabilitySpec(spec)) << spec;
    EXPECT_EQ(MakeReachabilityIndex(std::string_view(spec), g.graph()),
              nullptr)
        << spec;
  }
  EXPECT_TRUE(IsValidReachabilitySpec("delta:sharded:interval"));
  EXPECT_TRUE(IsValidReachabilitySpec("cached:delta:contour"));
}

// ------------------------------------------------ update file round-trip

TEST(UpdateIoTest, RoundTripsBatches) {
  std::vector<UpdateBatch> batches(2);
  batches[0].add_nodes = {3, -1};
  batches[0].add_edges = {{0, 5}, {5, 1}};
  batches[1].remove_edges = {{2, 4}};
  batches[1].remove_nodes = {7};

  std::stringstream stream;
  ASSERT_TRUE(SaveUpdateBatches(batches, &stream).ok());
  auto loaded = LoadUpdateBatches(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].add_nodes, batches[0].add_nodes);
  EXPECT_EQ((*loaded)[0].add_edges, batches[0].add_edges);
  EXPECT_EQ((*loaded)[1].remove_edges, batches[1].remove_edges);
  EXPECT_EQ((*loaded)[1].remove_nodes, batches[1].remove_nodes);

  std::stringstream bad("gtpq-updates v1\naddedge 1\n");
  EXPECT_FALSE(LoadUpdateBatches(&bad).ok());
  std::stringstream wrong_header("gtpq-graph v1\n");
  EXPECT_FALSE(LoadUpdateBatches(&wrong_header).ok());
}

// ------------------------------------- delta overlay differential suite

struct OverlayCase {
  const char* name;
  bool cyclic;
  double del_ratio;
  uint64_t seed;
};

class DeltaOverlayDifferentialTest
    : public ::testing::TestWithParam<OverlayCase> {};

TEST_P(DeltaOverlayDifferentialTest, MatchesRebuiltClosureAfterEachBatch) {
  const OverlayCase& test_case = GetParam();
  DataGraph g = test_case.cyclic
                    ? RandomDigraph({.num_nodes = 40,
                                     .avg_degree = 2.0,
                                     .num_labels = 5,
                                     .seed = test_case.seed})
                    : RandomDag({.num_nodes = 45,
                                 .avg_degree = 2.2,
                                 .num_labels = 5,
                                 .locality = 1.0,
                                 .seed = test_case.seed});
  const std::vector<UpdateBatch> stream =
      GenerateStream(g, /*rounds=*/10, /*ops=*/12, test_case.del_ratio,
                     test_case.seed * 31 + 5);

  auto inner = MakeReachabilityIndex(std::string_view("contour"),
                                     g.graph());
  ASSERT_NE(inner, nullptr);
  auto overlay = std::make_shared<const DeltaOverlayOracle>(
      std::shared_ptr<const ReachabilityOracle>(std::move(inner)),
      &g.graph());
  EXPECT_EQ(overlay->name(), "delta:contour");

  GraphDelta view(g.NumNodes());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(view.Apply(g.graph(), stream[i]).ok());
    auto next = overlay->WithUpdates(stream[i]);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    overlay = next.TakeValue();
    ExpectOracleMatchesGolden(
        *overlay, view.MaterializeDigraph(g.graph()),
        std::string(test_case.name) + " batch " + std::to_string(i));
  }
}

TEST_P(DeltaOverlayDifferentialTest, CompactionPreservesAnswers) {
  const OverlayCase& test_case = GetParam();
  DataGraph g = RandomDag({.num_nodes = 35,
                           .avg_degree = 2.0,
                           .num_labels = 5,
                           .locality = 1.0,
                           .seed = test_case.seed});
  const std::vector<UpdateBatch> stream =
      GenerateStream(g, /*rounds=*/8, /*ops=*/10, test_case.del_ratio,
                     test_case.seed * 17 + 3);

  // A threshold low enough that the schedule crosses it repeatedly.
  DeltaOverlayOptions options;
  options.min_compact_ops = 16;
  options.compact_fraction = 0.0;
  auto inner =
      MakeReachabilityIndex(std::string_view("interval"), g.graph());
  ASSERT_NE(inner, nullptr);
  auto overlay = std::make_shared<const DeltaOverlayOracle>(
      std::shared_ptr<const ReachabilityOracle>(std::move(inner)),
      &g.graph(), options);

  GraphDelta view(g.NumNodes());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(view.Apply(g.graph(), stream[i]).ok());
    auto next = overlay->WithUpdates(stream[i]);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    overlay = next.TakeValue();
    ASSERT_LT(overlay->PendingOps(), 16u + 10u);
    ExpectOracleMatchesGolden(*overlay,
                              view.MaterializeDigraph(g.graph()),
                              "compacting batch " + std::to_string(i));
  }
  EXPECT_GT(overlay->compactions(), 0u);

  // Manual compaction is answer-preserving too.
  auto compacted = overlay->Compact();
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ((*compacted)->PendingOps(), 0u);
  ExpectOracleMatchesGolden(**compacted,
                            view.MaterializeDigraph(g.graph()),
                            "manual compaction");
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, DeltaOverlayDifferentialTest,
    ::testing::Values(
        OverlayCase{"insert_heavy_dag", false, 0.05, 3},
        OverlayCase{"mixed_dag", false, 0.4, 11},
        OverlayCase{"delete_heavy_dag", false, 0.8, 19},
        OverlayCase{"mixed_cyclic", true, 0.4, 27},
        OverlayCase{"delete_heavy_cyclic", true, 0.8, 35}),
    [](const ::testing::TestParamInfo<OverlayCase>& info) {
      return info.param.name;
    });

// ------------------------------- delta-aware set reachability probes

/// Golden any-of helper over the materialized combined view.
bool GoldenAnyReaches(const TransitiveClosure& golden, NodeId from,
                      std::span<const NodeId> members, bool from_set) {
  for (NodeId m : members) {
    if (from_set ? golden.Reaches(m, from) : golden.Reaches(from, m)) {
      return true;
    }
  }
  return false;
}

TEST(DeltaSetProbeTest, SetProbesMatchGoldenAcrossRegimes) {
  // 0.0 = insert-only, 1.0 = delete-only, 0.5 = mixed: each schedule
  // pins the overlay in one incremental regime (no compaction at these
  // op counts), so every proof path of the native probes is covered.
  for (const double del_ratio : {0.0, 1.0, 0.5}) {
    DataGraph g = RandomDag({.num_nodes = 40,
                             .avg_degree = 2.2,
                             .num_labels = 5,
                             .locality = 1.0,
                             .seed = 51});
    const std::vector<UpdateBatch> stream = GenerateStream(
        g, /*rounds=*/3, /*ops=*/10, del_ratio,
        /*seed=*/73 + static_cast<uint64_t>(del_ratio * 10));

    auto inner = MakeReachabilityIndex(std::string_view("contour"),
                                       g.graph());
    ASSERT_NE(inner, nullptr);
    auto overlay = std::make_shared<const DeltaOverlayOracle>(
        std::shared_ptr<const ReachabilityOracle>(std::move(inner)),
        &g.graph());
    GraphDelta view(g.NumNodes());
    for (const UpdateBatch& batch : stream) {
      ASSERT_TRUE(view.Apply(g.graph(), batch).ok());
      auto next = overlay->WithUpdates(batch);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      overlay = next.TakeValue();
    }
    ASSERT_EQ(overlay->compactions(), 0u);
    const Digraph combined = view.MaterializeDigraph(g.graph());
    const TransitiveClosure golden = TransitiveClosure::Build(combined);
    const size_t n = combined.NumNodes();

    Rng rng(977);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<NodeId> members;
      for (size_t k = 0; k < 4; ++k) {
        members.push_back(static_cast<NodeId>(rng.NextBounded(n)));
      }
      const auto targets = overlay->SummarizeTargets(members);
      const auto sources = overlay->SummarizeSources(members);
      for (NodeId v = 0; v < n; ++v) {
        EXPECT_EQ(overlay->ReachesSet(v, *targets),
                  GoldenAnyReaches(golden, v, members, false))
            << "del_ratio " << del_ratio << " trial " << trial
            << " ReachesSet(" << v << ")";
        EXPECT_EQ(overlay->SetReaches(*sources, v),
                  GoldenAnyReaches(golden, v, members, true))
            << "del_ratio " << del_ratio << " trial " << trial
            << " SetReaches(" << v << ")";
      }
      // SuccessorsAmong agrees with golden membership indices.
      const auto prepared = overlay->PrepareSuccessorTargets(members);
      for (NodeId v = 0; v < n; ++v) {
        std::vector<uint32_t> got, want;
        overlay->SuccessorsAmong(v, *prepared, &got);
        for (uint32_t i = 0; i < members.size(); ++i) {
          if (golden.Reaches(v, members[i])) want.push_back(i);
        }
        EXPECT_EQ(got, want) << "SuccessorsAmong(" << v << ")";
      }
    }
  }
}

// The point of the native probes: where a regime proof applies, one
// set probe costs ONE IndexStats query (one batched inner probe), not
// one point query per member as the pairwise defaults do.
TEST(DeltaSetProbeTest, NativeProbesCountOneQueryWhereProofsApply) {
  // 0 -> 1 -> 2 -> 3 -> 4, plus isolated 5.
  DataGraph g = MakeGraph(6, {0, 1, 2, 3, 4, 5},
                          {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto inner =
      MakeReachabilityIndex(std::string_view("contour"), g.graph());
  ASSERT_NE(inner, nullptr);
  auto overlay = std::make_shared<const DeltaOverlayOracle>(
      std::shared_ptr<const ReachabilityOracle>(std::move(inner)),
      &g.graph());

  const std::vector<NodeId> members = {2, 3, 4};
  {
    // Empty delta: pure delegation. The pairwise default would issue
    // |members| point queries for this negative probe.
    const auto targets = overlay->SummarizeTargets(members);
    overlay->stats().Reset();
    EXPECT_FALSE(overlay->ReachesSet(5, *targets));
    EXPECT_EQ(overlay->stats().queries, 1u);
    overlay->stats().Reset();
    EXPECT_TRUE(overlay->ReachesSet(0, *targets));
    EXPECT_EQ(overlay->stats().queries, 1u);
  }

  // Insert-only delta: positive inner answers are proofs.
  auto next = overlay->WithUpdates(EdgeAdd({{5, 0}}));
  ASSERT_TRUE(next.ok());
  overlay = next.TakeValue();
  {
    const auto targets = overlay->SummarizeTargets(members);
    overlay->stats().Reset();
    EXPECT_TRUE(overlay->ReachesSet(0, *targets));  // base path proof
    EXPECT_EQ(overlay->stats().queries, 1u);
    // Via the added edge the probe needs the fallback — correct, and
    // costs extra point queries.
    overlay->stats().Reset();
    EXPECT_TRUE(overlay->ReachesSet(5, *targets));
    EXPECT_GT(overlay->stats().queries, 1u);

    const auto sources = overlay->SummarizeSources(members);
    overlay->stats().Reset();
    EXPECT_TRUE(overlay->SetReaches(*sources, 4));  // base path proof
    EXPECT_EQ(overlay->stats().queries, 1u);
  }

  // Delete-only delta: negative inner answers are proofs.
  auto deleted = std::make_shared<const DeltaOverlayOracle>(
      std::shared_ptr<const ReachabilityOracle>(MakeReachabilityIndex(
          std::string_view("contour"), g.graph())),
      &g.graph());
  next = deleted->WithUpdates(EdgeRemove({{2, 3}}));
  ASSERT_TRUE(next.ok());
  deleted = next.TakeValue();
  {
    const std::vector<NodeId> unreachable = {0, 1};
    const auto targets = deleted->SummarizeTargets(unreachable);
    deleted->stats().Reset();
    EXPECT_FALSE(deleted->ReachesSet(3, *targets));  // negative proof
    EXPECT_EQ(deleted->stats().queries, 1u);
    deleted->stats().Reset();
    // A positive inner answer needs pairwise verification against the
    // removed edge — and (0 -> {3, 4}) is now genuinely severed.
    const std::vector<NodeId> beyond_cut = {3, 4};
    const auto cut = deleted->SummarizeTargets(beyond_cut);
    EXPECT_FALSE(deleted->ReachesSet(0, *cut));
    EXPECT_GT(deleted->stats().queries, 1u);
  }
}

// Compaction folds a removal into the rebuilt base as a plain isolated
// vertex; the retired list is what keeps the id dead afterwards — and
// it must survive save/load, so `gteactl apply` runs agree with the
// serving runtime.
TEST(DeltaOverlayTest, RetiredVerticesStayDeadAcrossCompactionAndReload) {
  DataGraph g = MakeGraph(4, {0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  auto inner =
      MakeReachabilityIndex(std::string_view("contour"), g.graph());
  ASSERT_NE(inner, nullptr);
  auto overlay = std::make_shared<const DeltaOverlayOracle>(
      std::shared_ptr<const ReachabilityOracle>(std::move(inner)),
      &g.graph());

  auto removed = overlay->WithUpdates(NodeRemove({2}));
  ASSERT_TRUE(removed.ok());
  auto compacted = (*removed)->Compact();
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ((*compacted)->PendingOps(), 0u);
  EXPECT_EQ((*compacted)->retired_nodes(), std::vector<NodeId>{2});
  EXPECT_EQ(
      (*compacted)->WithUpdates(EdgeAdd({{1, 2}})).status().code(),
      StatusCode::kFailedPrecondition);
  EXPECT_EQ((*compacted)->WithUpdates(NodeRemove({2})).status().code(),
            StatusCode::kFailedPrecondition);

  const std::string path = TempPath("retired");
  ASSERT_TRUE(storage::SaveReachabilityIndex(
                  **compacted, (*compacted)->base_graph(), path)
                  .ok());
  auto loaded =
      storage::LoadReachabilityIndex(path, (*compacted)->base_graph());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto* reloaded =
      dynamic_cast<const DeltaOverlayOracle*>(loaded->get());
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->retired_nodes(), std::vector<NodeId>{2});
  EXPECT_EQ(reloaded->WithUpdates(EdgeAdd({{1, 2}})).status().code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// ----------------------------------------- pending-delta persistence

TEST(DeltaPersistenceTest, RoundTripsPendingDelta) {
  DataGraph g = RandomDag({.num_nodes = 30,
                           .avg_degree = 2.0,
                           .num_labels = 4,
                           .locality = 1.0,
                           .seed = 9});
  const std::vector<UpdateBatch> stream =
      GenerateStream(g, /*rounds=*/4, /*ops=*/8, /*del_ratio=*/0.4, 77);

  auto inner =
      MakeReachabilityIndex(std::string_view("contour"), g.graph());
  ASSERT_NE(inner, nullptr);
  auto overlay = std::make_shared<const DeltaOverlayOracle>(
      std::shared_ptr<const ReachabilityOracle>(std::move(inner)),
      &g.graph());
  GraphDelta view(g.NumNodes());
  for (const UpdateBatch& batch : stream) {
    ASSERT_TRUE(view.Apply(g.graph(), batch).ok());
    auto next = overlay->WithUpdates(batch);
    ASSERT_TRUE(next.ok());
    overlay = next.TakeValue();
  }
  ASSERT_GT(overlay->PendingOps(), 0u);

  // The file is stamped with the *updated* graph's fingerprint: that is
  // the graph a loaded snapshot serves.
  const Digraph updated = view.MaterializeDigraph(g.graph());
  const std::string path = TempPath("pending");
  ASSERT_TRUE(
      storage::SaveReachabilityIndex(*overlay, updated, path).ok());

  auto loaded = storage::LoadReachabilityIndex(path, updated);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "delta:contour");
  const auto* reloaded =
      dynamic_cast<const DeltaOverlayOracle*>(loaded->get());
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->PendingOps(), overlay->PendingOps());
  ExpectOracleMatchesGolden(*reloaded, updated, "reloaded pending delta");

  // The wrong-graph guard still applies.
  EXPECT_FALSE(storage::LoadReachabilityIndex(path, g.graph()).ok());
  std::remove(path.c_str());
}

// ------------------------------------------- serving runtime updates

std::vector<Gtpq> MakeQueryBatch(const DataGraph& g, size_t count,
                                 uint64_t seed_base) {
  std::vector<Gtpq> queries;
  for (uint64_t seed = seed_base;
       queries.size() < count && seed < seed_base + 40 * count; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 4 + seed % 3;
    qo.pc_probability = 0.25;
    qo.predicate_fraction = 0.3;
    qo.output_fraction = 0.8;
    qo.seed = seed * 29 + 1;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (q.has_value()) queries.push_back(std::move(*q));
  }
  return queries;
}

class QueryServerUpdateTest : public ::testing::TestWithParam<size_t> {};

TEST_P(QueryServerUpdateTest, MatchesRebuiltEngineAfterEachBatch) {
  const size_t threads = GetParam();
  // "naive" exercises the non-gtea full-rebuild path of ApplyUpdates;
  // the gtea specs take the incremental delta-overlay path.
  for (const char* spec : {"gtea", "gtea:cached:contour", "naive"}) {
    DataGraph g = RandomDag({.num_nodes = 60,
                             .avg_degree = 2.2,
                             .num_labels = 6,
                             .locality = 1.0,
                             .seed = 13});
    const std::vector<Gtpq> queries = MakeQueryBatch(g, 12, 500);
    ASSERT_GE(queries.size(), 6u) << "generator starved";
    // Delete-heavy enough to exercise the removal regimes, and a
    // compaction threshold the schedule crosses.
    const std::vector<UpdateBatch> stream =
        GenerateStream(g, /*rounds=*/6, /*ops=*/10, /*del_ratio=*/0.5, 41);

    QueryServerOptions options;
    options.num_threads = threads;
    options.engine_spec = spec;
    options.delta_options.min_compact_ops = 24;
    options.delta_options.compact_fraction = 0.0;
    QueryServer server(g, options);

    GraphDelta view(g.NumNodes());
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_TRUE(view.Apply(g.graph(), stream[i]).ok());
      ASSERT_TRUE(server.ApplyUpdates(stream[i]).ok());
      EXPECT_EQ(server.epoch(), i + 1);

      // Rebuild-from-scratch golden: a fresh sequential engine over the
      // materialized graph.
      const DataGraph updated = view.MaterializeDataGraph(g);
      auto golden_factory = SharedEngineFactory::Make("gtea", updated);
      ASSERT_NE(golden_factory, nullptr);
      auto golden = golden_factory->Create();

      const std::vector<QueryResult> results =
          server.EvaluateBatch(queries);
      for (size_t q = 0; q < queries.size(); ++q) {
        ASSERT_EQ(results[q], golden->Evaluate(queries[q]))
            << spec << " at " << threads << " threads, batch " << i
            << ", query " << q;
      }
    }
  }
}

TEST_P(QueryServerUpdateTest, RejectsInvalidBatchesUnchanged) {
  const size_t threads = GetParam();
  DataGraph g = MakeGraph(3, {0, 1, 2}, {{0, 1}, {1, 2}});
  QueryServer server(g, {.num_threads = threads});
  const std::vector<Gtpq> queries = MakeQueryBatch(g, 4, 900);
  const std::vector<QueryResult> before = server.EvaluateBatch(queries);

  EXPECT_EQ(server.ApplyUpdates(EdgeAdd({{0, 1}})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(server.ApplyUpdates(EdgeRemove({{2, 0}})).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.epoch(), 0u);
  EXPECT_EQ(server.EvaluateBatch(queries), before);
}

// A removed id must stay dead for the rest of the server's life — even
// though a materialized snapshot shows it as a plain isolated vertex,
// and even after the gtea overlay compacted the removal away. Both the
// incremental path (gtea, compacting every batch) and the full-rebuild
// path (naive) must enforce it identically.
TEST_P(QueryServerUpdateTest, TombstonesStayDeadAcrossBatches) {
  const size_t threads = GetParam();
  for (const char* spec : {"gtea", "naive"}) {
    DataGraph g = MakeGraph(4, {0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
    QueryServerOptions options;
    options.num_threads = threads;
    options.engine_spec = spec;
    options.delta_options.min_compact_ops = 1;
    options.delta_options.compact_fraction = 0.0;
    QueryServer server(g, options);
    ASSERT_TRUE(server.ApplyUpdates(NodeRemove({2})).ok());
    EXPECT_EQ(server.ApplyUpdates(EdgeAdd({{1, 2}})).code(),
              StatusCode::kFailedPrecondition)
        << spec;
    EXPECT_EQ(server.ApplyUpdates(EdgeAdd({{2, 3}})).code(),
              StatusCode::kFailedPrecondition)
        << spec;
    EXPECT_EQ(server.ApplyUpdates(NodeRemove({2})).code(),
              StatusCode::kFailedPrecondition)
        << spec;
    EXPECT_EQ(server.epoch(), 1u) << spec;
  }

  // The serving name tracks the live snapshot's engines: updates wrap
  // the gtea oracle in the delta overlay.
  DataGraph g = MakeGraph(3, {0, 1, 2}, {{0, 1}, {1, 2}});
  QueryServer server(g, {.num_threads = threads});
  EXPECT_EQ(server.engine_name(), "gtea[contour]");
  ASSERT_TRUE(server.ApplyUpdates(EdgeAdd({{0, 2}})).ok());
  EXPECT_EQ(server.engine_name(), "gtea[delta:contour]");
}

INSTANTIATE_TEST_SUITE_P(Threads, QueryServerUpdateTest,
                         ::testing::Values(1u, 8u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "threads_" +
                                  std::to_string(info.param);
                         });

// Concurrent writers and readers: while one thread streams update
// batches through ApplyUpdates, reader threads push query batches. A
// batch pins the snapshot current at entry, so every result vector must
// equal the golden answers of exactly one epoch — never a mix. (This is
// the test the TSan CI job runs against the snapshot machinery.)
TEST(SnapshotConsistencyTest, ConcurrentUpdatesAndBatchesSeeOneEpoch) {
  DataGraph g = RandomDag({.num_nodes = 50,
                           .avg_degree = 2.2,
                           .num_labels = 5,
                           .locality = 1.0,
                           .seed = 23});
  const std::vector<Gtpq> queries = MakeQueryBatch(g, 8, 1200);
  ASSERT_GE(queries.size(), 4u) << "generator starved";
  const std::vector<UpdateBatch> stream =
      GenerateStream(g, /*rounds=*/5, /*ops=*/8, /*del_ratio=*/0.4, 61);

  // Golden result vectors per epoch, computed sequentially up front.
  std::vector<std::vector<QueryResult>> expected;
  GraphDelta view(g.NumNodes());
  {
    auto factory = SharedEngineFactory::Make("gtea", g);
    ASSERT_NE(factory, nullptr);
    auto engine = factory->Create();
    std::vector<QueryResult> epoch0;
    for (const Gtpq& q : queries) epoch0.push_back(engine->Evaluate(q));
    expected.push_back(std::move(epoch0));
  }
  std::vector<DataGraph> epoch_graphs;  // keep alive for the factories
  for (const UpdateBatch& batch : stream) {
    ASSERT_TRUE(view.Apply(g.graph(), batch).ok());
    epoch_graphs.push_back(view.MaterializeDataGraph(g));
    auto factory = SharedEngineFactory::Make("gtea", epoch_graphs.back());
    ASSERT_NE(factory, nullptr);
    auto engine = factory->Create();
    std::vector<QueryResult> answers;
    for (const Gtpq& q : queries) answers.push_back(engine->Evaluate(q));
    expected.push_back(std::move(answers));
  }

  QueryServer server(g, {.num_threads = 4});
  std::thread updater([&] {
    for (const UpdateBatch& batch : stream) {
      ASSERT_TRUE(server.ApplyUpdates(batch).ok());
      // Let readers interleave between epochs.
      server.EvaluateBatch(std::span<const Gtpq>(queries.data(), 2));
    }
  });
  std::vector<std::thread> readers;
  for (int reader = 0; reader < 2; ++reader) {
    readers.emplace_back([&] {
      for (int round = 0; round < 12; ++round) {
        const std::vector<QueryResult> results =
            server.EvaluateBatch(queries);
        const bool matches_one_epoch =
            std::find(expected.begin(), expected.end(), results) !=
            expected.end();
        ASSERT_TRUE(matches_one_epoch)
            << "batch result matches no single epoch (round " << round
            << ")";
      }
    });
  }
  updater.join();
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(server.epoch(), stream.size());
  // Once quiescent, the server serves exactly the final epoch.
  EXPECT_EQ(server.EvaluateBatch(queries), expected.back());
}

}  // namespace
}  // namespace gtpq
