// Socket-level tests for the gtpq-wire v1 front-end: codec round trips
// for every frame type, malformed/truncated/oversized frame rejection,
// admission control, pipelined multi-client differentials against the
// in-process QueryServer, and wire APPLY_UPDATES snapshot consistency
// under concurrent query load (this last one runs in the TSan CI job).
#include <algorithm>
#include <atomic>
#include <cstring>
#include <iterator>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <span>

#include <gtest/gtest.h>

#include "dynamic/stream_gen.h"
#include "storage/serializer.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/federation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/query_generator.h"
#include "runtime/engine_factory.h"
#include "runtime/query_server.h"
#include "tests/test_util.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <chrono>
#include <optional>

namespace gtpq {
namespace {

using net::Frame;
using net::FrameDecoder;
using net::FrameType;

// ------------------------------------------------------------- codec

TEST(WireCodecTest, FrameRoundTripsEveryType) {
  const struct {
    FrameType type;
    std::string payload;
  } cases[] = {
      {FrameType::kHello, net::EncodeHello()},
      {FrameType::kQuery,
       net::EncodeQueryRequest({42, "backbone a root *\n"})},
      {FrameType::kBatch,
       net::EncodeBatchRequest({7, {"q0\n", "q1\n", ""}})},
      {FrameType::kApplyUpdates, "gtpq-updates v1\naddedge 0 1\n"},
      {FrameType::kStats, ""},
      {FrameType::kError,
       net::EncodeError(Status::InvalidArgument("boom"))},
      {FrameType::kHelloOk,
       net::EncodeHelloOk({3, 999, "gtea[contour]"})},
      {FrameType::kResult, net::EncodeResult({5, {{0, 2}, {{1, 4}}}})},
      {FrameType::kBatchResult,
       net::EncodeBatchResult({6, {{{0}, {{1}, {2}}}, {{1}, {}}}})},
      {FrameType::kApplyOk, net::EncodeApplyOk({9, 4})},
      {FrameType::kStatsResult, net::EncodeServingStats([] {
         ServingStats s;
         s.engine = "gtea";
         s.epoch = 2;
         s.queries = 11;
         s.busy_ms = 1.5;
         return s;
       }())},
  };
  // One buffer carrying all frames, drip-fed a byte at a time, checks
  // both pipelining and resumable partial decode.
  std::string bytes;
  uint64_t id = 100;
  for (const auto& c : cases) {
    net::EncodeFrame(c.type, id++, c.payload, &bytes);
  }
  FrameDecoder decoder;
  std::vector<Frame> decoded;
  for (size_t i = 0; i < bytes.size(); ++i) {
    decoder.Append(bytes.data() + i, 1);
    while (true) {
      auto frame = decoder.Next();
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      if (!frame->has_value()) break;
      decoded.push_back(std::move(**frame));
    }
  }
  ASSERT_EQ(decoded.size(), std::size(cases));
  id = 100;
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].type, cases[i].type);
    EXPECT_EQ(decoded[i].request_id, id++);
    EXPECT_EQ(decoded[i].payload, cases[i].payload);
  }
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireCodecTest, PayloadCodecsRoundTrip) {
  net::HelloOk hello{7, 1234, "gtea[delta:contour]"};
  net::HelloOk hello2;
  ASSERT_TRUE(
      net::DecodeHelloOk(net::EncodeHelloOk(hello), &hello2).ok());
  EXPECT_EQ(hello2.epoch, 7u);
  EXPECT_EQ(hello2.graph_nodes, 1234u);
  EXPECT_EQ(hello2.engine, "gtea[delta:contour]");

  net::QueryRequest query{64, "backbone a root *\nattr a label=3\n"};
  net::QueryRequest query2;
  ASSERT_TRUE(
      net::DecodeQueryRequest(net::EncodeQueryRequest(query), &query2)
          .ok());
  EXPECT_EQ(query2.result_limit, 64u);
  EXPECT_EQ(query2.text, query.text);
  EXPECT_EQ(query2.parallelism, 0u);

  // The optional parallelism field round-trips, and a serial request
  // encodes byte-identically to the pre-parallelism layout (the field
  // is only appended when nonzero, keeping old decoders compatible).
  net::QueryRequest parallel_query = query;
  parallel_query.parallelism = 8;
  net::QueryRequest parallel_query2;
  ASSERT_TRUE(net::DecodeQueryRequest(
                  net::EncodeQueryRequest(parallel_query),
                  &parallel_query2)
                  .ok());
  EXPECT_EQ(parallel_query2.parallelism, 8u);
  EXPECT_EQ(parallel_query2.text, query.text);
  EXPECT_EQ(net::EncodeQueryRequest(parallel_query).size(),
            net::EncodeQueryRequest(query).size() + 4);

  net::BatchRequest batch{0, {"a\n", "b\n"}};
  net::BatchRequest batch2;
  ASSERT_TRUE(net::DecodeBatchRequest(net::EncodeBatchRequest(batch), {},
                                      &batch2)
                  .ok());
  EXPECT_EQ(batch2.texts, batch.texts);
  EXPECT_EQ(batch2.parallelism, 0u);
  batch.parallelism = 4;
  ASSERT_TRUE(net::DecodeBatchRequest(net::EncodeBatchRequest(batch), {},
                                      &batch2)
                  .ok());
  EXPECT_EQ(batch2.parallelism, 4u);
  batch.parallelism = 0;
  // Batch count above the limit is an admission error, not a crash.
  net::WireLimits tiny;
  tiny.max_batch_queries = 1;
  EXPECT_EQ(net::DecodeBatchRequest(net::EncodeBatchRequest(batch), tiny,
                                    &batch2)
                .code(),
            StatusCode::kInvalidArgument);

  net::WireResult result{3, {{1, 5}, {{2, 7}, {4, 9}}}};
  net::WireResult result2;
  ASSERT_TRUE(net::DecodeResult(net::EncodeResult(result), &result2).ok());
  EXPECT_EQ(result2.epoch, 3u);
  EXPECT_EQ(result2.result, result.result);

  net::WireBatchResult batch_result{
      2, {{{0}, {{3}}}, {{0, 1}, {{4, 5}, {6, 7}}}}};
  net::WireBatchResult batch_result2;
  ASSERT_TRUE(net::DecodeBatchResult(
                  net::EncodeBatchResult(batch_result), &batch_result2)
                  .ok());
  EXPECT_EQ(batch_result2.epoch, 2u);
  ASSERT_EQ(batch_result2.results.size(), 2u);
  EXPECT_EQ(batch_result2.results[1], batch_result.results[1]);

  const Status carried =
      net::DecodeError(net::EncodeError(Status::NotFound("gone")));
  EXPECT_EQ(carried.code(), StatusCode::kNotFound);
  EXPECT_EQ(carried.message(), "gone");

  // Truncated payloads surface as parse errors, not crashes.
  const std::string encoded = net::EncodeResult(result);
  for (size_t cut : {size_t{0}, size_t{3}, encoded.size() - 1}) {
    net::WireResult scratch;
    EXPECT_FALSE(
        net::DecodeResult(encoded.substr(0, cut), &scratch).ok());
  }
}

TEST(WireCodecTest, TraceFieldsStayWireCompatible) {
  // Frames hand-built in the original v1 layout (no parallelism, no
  // trace pair) must decode with every optional field zeroed — an old
  // peer keeps talking to a new server unchanged.
  {
    storage::Writer w;
    w.WriteU64(9);
    w.WriteString("a\n");
    net::QueryRequest out{1, "x", 5, 5, 5};  // poisoned optionals
    ASSERT_TRUE(net::DecodeQueryRequest(w.buffer(), &out).ok());
    EXPECT_EQ(out.result_limit, 9u);
    EXPECT_EQ(out.text, "a\n");
    EXPECT_EQ(out.parallelism, 0u);
    EXPECT_EQ(out.trace_id, 0u);
    EXPECT_EQ(out.parent_span, 0u);
  }
  {
    storage::Writer w;
    w.WriteU64(0);
    w.WriteU32(2);
    w.WriteString("a\n");
    w.WriteString("b\n");
    net::BatchRequest out;
    out.trace_id = 5;
    ASSERT_TRUE(net::DecodeBatchRequest(w.buffer(), {}, &out).ok());
    EXPECT_EQ(out.texts.size(), 2u);
    EXPECT_EQ(out.parallelism, 0u);
    EXPECT_EQ(out.trace_id, 0u);
  }
  {
    storage::Writer w;
    w.WriteU8(1);
    w.WriteU64(3);
    w.WritePodVec(std::vector<NodeId>{1, 2, 7});
    net::ProbeRequest out;
    out.trace_id = 5;
    ASSERT_TRUE(net::DecodeProbeRequest(w.buffer(), &out).ok());
    EXPECT_TRUE(out.reverse);
    EXPECT_EQ(out.ids.size(), 3u);
    EXPECT_EQ(out.trace_id, 0u);
    EXPECT_EQ(out.parent_span, 0u);
  }

  // Untraced requests still encode byte-identically to the old layout;
  // a traced request appends parallelism (even when 0, to keep the
  // positional decode) plus the 16-byte trace pair.
  net::QueryRequest plain{4, "q\n"};
  net::QueryRequest traced = plain;
  traced.trace_id = 0xabcdef01;
  traced.parent_span = 77;
  EXPECT_EQ(net::EncodeQueryRequest(traced).size(),
            net::EncodeQueryRequest(plain).size() + 4 + 16);
  net::QueryRequest traced2;
  ASSERT_TRUE(
      net::DecodeQueryRequest(net::EncodeQueryRequest(traced), &traced2)
          .ok());
  EXPECT_EQ(traced2.trace_id, 0xabcdef01u);
  EXPECT_EQ(traced2.parent_span, 77u);
  EXPECT_EQ(traced2.parallelism, 0u);
  EXPECT_EQ(traced2.text, plain.text);

  net::BatchRequest traced_batch{0, {"a\n"}};
  traced_batch.parallelism = 3;
  traced_batch.trace_id = 11;
  traced_batch.parent_span = 12;
  net::BatchRequest traced_batch2;
  ASSERT_TRUE(net::DecodeBatchRequest(
                  net::EncodeBatchRequest(traced_batch), {},
                  &traced_batch2)
                  .ok());
  EXPECT_EQ(traced_batch2.parallelism, 3u);
  EXPECT_EQ(traced_batch2.trace_id, 11u);
  EXPECT_EQ(traced_batch2.parent_span, 12u);

  net::ProbeRequest traced_probe;
  traced_probe.pivot = 5;
  traced_probe.ids = {8, 9};
  traced_probe.trace_id = 21;
  traced_probe.parent_span = 22;
  EXPECT_EQ(net::EncodeProbeRequest(traced_probe).size(),
            net::EncodeProbeRequest({false, 5, {8, 9}}).size() + 16);
  net::ProbeRequest traced_probe2;
  ASSERT_TRUE(net::DecodeProbeRequest(
                  net::EncodeProbeRequest(traced_probe), &traced_probe2)
                  .ok());
  EXPECT_EQ(traced_probe2.ids, traced_probe.ids);
  EXPECT_EQ(traced_probe2.trace_id, 21u);
  EXPECT_EQ(traced_probe2.parent_span, 22u);
}

TEST(WireCodecTest, ObserveCodecsRoundTripAndValidate) {
  for (net::ObserveKind kind :
       {net::ObserveKind::kMetrics, net::ObserveKind::kTrace,
        net::ObserveKind::kSlowlog, net::ObserveKind::kMetricsSnapshot,
        net::ObserveKind::kHealth, net::ObserveKind::kSpans}) {
    net::ObserveKind out;
    uint64_t filter = 7;
    ASSERT_TRUE(net::DecodeObserveRequest(net::EncodeObserveRequest(kind),
                                          &out, &filter)
                    .ok());
    EXPECT_EQ(out, kind);
    // No trailing filter encoded -> decoded as 0, never left stale.
    EXPECT_EQ(filter, 0u);
  }
  {
    storage::Writer w;
    w.WriteU8(6);  // out of range
    net::ObserveKind out;
    uint64_t filter = 0;
    EXPECT_EQ(net::DecodeObserveRequest(w.buffer(), &out, &filter).code(),
              StatusCode::kParseError);
  }
  {
    // The trace-id filter round-trips as the optional trailing field...
    const std::string encoded =
        net::EncodeObserveRequest(net::ObserveKind::kSpans, 0xabcdef);
    EXPECT_EQ(encoded.size(),
              net::EncodeObserveRequest(net::ObserveKind::kSpans).size() +
                  8);
    net::ObserveKind out;
    uint64_t filter = 0;
    ASSERT_TRUE(net::DecodeObserveRequest(encoded, &out, &filter).ok());
    EXPECT_EQ(out, net::ObserveKind::kSpans);
    EXPECT_EQ(filter, 0xabcdefu);
    // ...and a filter of 0 encodes the original single-byte layout, so
    // unfiltered requests stay byte-identical for old peers.
    EXPECT_EQ(net::EncodeObserveRequest(net::ObserveKind::kTrace, 0).size(),
              1u);
  }
  const std::string body = "# TYPE x counter\nx 1\n";
  std::string body2;
  ASSERT_TRUE(
      net::DecodeObserveResult(net::EncodeObserveResult(body), &body2)
          .ok());
  EXPECT_EQ(body2, body);
  EXPECT_TRUE(net::IsRequestType(
      static_cast<uint8_t>(FrameType::kObserve)));
  EXPECT_FALSE(net::IsRequestType(
      static_cast<uint8_t>(FrameType::kObserveResult)));
  EXPECT_TRUE(net::IsKnownType(
      static_cast<uint8_t>(FrameType::kObserveResult)));
}

TEST(WireCodecTest, HealthReportRoundTripAndValidate) {
  net::HealthReport report;
  report.epoch = 9;
  report.uptime_seconds = 123.5;
  report.queue_depth = 4;
  report.serving = 1;
  report.engine = "gtea[contour]";
  const std::string encoded = net::EncodeHealthReport(report);
  net::HealthReport out;
  ASSERT_TRUE(net::DecodeHealthReport(encoded, &out).ok());
  EXPECT_EQ(out.epoch, 9u);
  EXPECT_EQ(out.uptime_seconds, 123.5);
  EXPECT_EQ(out.queue_depth, 4u);
  EXPECT_EQ(out.serving, 1);
  EXPECT_EQ(out.engine, "gtea[contour]");
  // Truncation anywhere must be a ParseError, not a garbage report.
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    net::HealthReport junk;
    EXPECT_FALSE(
        net::DecodeHealthReport(encoded.substr(0, cut), &junk).ok());
  }
  // Wrong magic is rejected up front.
  std::string wrong = encoded;
  wrong[0] ^= 0x5a;
  net::HealthReport junk;
  EXPECT_FALSE(net::DecodeHealthReport(wrong, &junk).ok());
}

TEST(WireCodecTest, ServingStatsCarriesStageTimings) {
  ServingStats stats;
  stats.queries = 5;
  stats.busy_ms = 1.5;
  stats.match_ms = 0.25;
  stats.prune_down_ms = 0.5;
  stats.prime_ms = 0.125;
  stats.prune_up_ms = 0.0625;
  stats.matching_graph_ms = 2.0;
  stats.enumerate_ms = 4.0;
  ServingStats out;
  ASSERT_TRUE(
      net::DecodeServingStats(net::EncodeServingStats(stats), &out).ok());
  EXPECT_EQ(out.queries, 5u);
  EXPECT_EQ(out.match_ms, 0.25);
  EXPECT_EQ(out.prune_down_ms, 0.5);
  EXPECT_EQ(out.prime_ms, 0.125);
  EXPECT_EQ(out.prune_up_ms, 0.0625);
  EXPECT_EQ(out.matching_graph_ms, 2.0);
  EXPECT_EQ(out.enumerate_ms, 4.0);
}

TEST(WireCodecTest, DecoderRejectsMalformedFrames) {
  std::string good;
  net::EncodeFrame(FrameType::kStats, 1, "", &good);

  // Truncation is not an error — the decoder just waits for more.
  {
    FrameDecoder decoder;
    decoder.Append(good.data(), good.size() - 1);
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok());
    EXPECT_FALSE(frame->has_value());
  }
  // Flipped payload/CRC byte.
  {
    std::string bad = good;
    bad[bad.size() - 1] ^= 0x40;
    FrameDecoder decoder;
    decoder.Append(bad.data(), bad.size());
    EXPECT_FALSE(decoder.Next().ok());
  }
  // Declared length below the frame-header minimum.
  {
    std::string bad;
    storage::Writer w;
    w.WriteU32(4);
    bad = w.buffer();
    bad.append(8, '\0');
    FrameDecoder decoder;
    decoder.Append(bad.data(), bad.size());
    EXPECT_FALSE(decoder.Next().ok());
  }
  // Oversized declared length is rejected before buffering the body.
  {
    net::WireLimits limits;
    limits.max_frame_bytes = 64;
    std::string bad;
    storage::Writer w;
    w.WriteU32(1 << 20);
    bad = w.buffer();
    FrameDecoder decoder(limits);
    decoder.Append(bad.data(), bad.size());
    EXPECT_FALSE(decoder.Next().ok());
  }
  // Unknown frame type (valid CRC).
  {
    std::string bad;
    net::EncodeFrame(static_cast<FrameType>(0x33), 1, "", &bad);
    FrameDecoder decoder;
    decoder.Append(bad.data(), bad.size());
    EXPECT_FALSE(decoder.Next().ok());
  }
}

// ------------------------------------------------------------ server

std::vector<Gtpq> MakeQueries(const DataGraph& g, size_t count,
                              uint64_t seed_base) {
  std::vector<Gtpq> queries;
  for (uint64_t seed = seed_base;
       queries.size() < count && seed < seed_base + 40 * count; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 4 + seed % 3;
    qo.pc_probability = 0.25;
    qo.predicate_fraction = 0.3;
    qo.output_fraction = 0.8;
    qo.seed = seed * 29 + 1;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (q.has_value()) queries.push_back(std::move(*q));
  }
  return queries;
}

std::vector<std::string> ToTexts(const DataGraph& g,
                                 const std::vector<Gtpq>& queries) {
  std::vector<std::string> texts;
  for (const Gtpq& q : queries) texts.push_back(q.ToString(g.attr_names()));
  return texts;
}

/// Starts a server or skips the test on non-epoll platforms.
#define START_OR_SKIP(server)                                   \
  do {                                                          \
    const Status _st = (server).Start();                        \
    if (_st.code() == StatusCode::kUnimplemented) {             \
      GTEST_SKIP() << _st.ToString();                           \
    }                                                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

TEST(NetServerTest, HelloQueryBatchStatsRoundTrip) {
  DataGraph g = RandomDag({.num_nodes = 60,
                           .avg_degree = 2.2,
                           .num_labels = 6,
                           .locality = 1.0,
                           .seed = 13});
  const std::vector<Gtpq> queries = MakeQueries(g, 6, 300);
  ASSERT_GE(queries.size(), 3u) << "generator starved";
  const std::vector<std::string> texts = ToTexts(g, queries);

  net::NetServerOptions options;
  options.runtime.num_threads = 2;
  net::NetServer server(g, options);
  START_OR_SKIP(server);

  const std::vector<QueryResult> expected =
      server.runtime().EvaluateBatch(queries);

  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(client.server_info().engine, "gtea[contour]");
  EXPECT_EQ(client.server_info().graph_nodes, g.NumNodes());
  EXPECT_EQ(client.server_info().epoch, 0u);

  // Single queries, one by one.
  for (size_t i = 0; i < texts.size(); ++i) {
    auto result = client.Query(texts[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->epoch, 0u);
    EXPECT_EQ(result->result, expected[i]) << "query " << i;
  }
  // The same workload as one BATCH frame.
  auto batch = client.QueryBatch(texts);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->results, expected);

  // Result limit is honored per request.
  auto limited = client.Query(texts[0], 1);
  ASSERT_TRUE(limited.ok());
  EXPECT_LE(limited->result.tuples.size(), 1u);

  // STATS aggregates: warmup batch + wire singles + wire batch + the
  // limited query, all counted by the shared runtime.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->engine, "gtea[contour]");
  EXPECT_EQ(stats->queries, 3 * texts.size() + 1);
  EXPECT_GE(stats->batches, 2u);
  EXPECT_EQ(stats->updates_applied, 0u);
  // And they are the same numbers the in-process accessor reports.
  const ServingStats direct = server.runtime().serving_stats();
  EXPECT_EQ(stats->queries, direct.queries);
  EXPECT_EQ(stats->index_lookups, direct.index_lookups);

  // Malformed query text is a per-request typed error; the connection
  // survives and keeps serving.
  auto bad = client.Query("backbone a nowhere ad *\n");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto again = client.Query(texts[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->result, expected[0]);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(NetServerTest, ObserveExportsAndTracedPipelining) {
  DataGraph g = RandomDag({.num_nodes = 60,
                           .avg_degree = 2.2,
                           .num_labels = 6,
                           .locality = 1.0,
                           .seed = 13});
  const std::vector<Gtpq> queries = MakeQueries(g, 4, 300);
  ASSERT_GE(queries.size(), 2u) << "generator starved";
  const std::vector<std::string> texts = ToTexts(g, queries);

  net::NetServerOptions options;
  options.runtime.num_threads = 2;
  net::NetServer server(g, options);
  START_OR_SKIP(server);

  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Trace-tagged frames through NetClient pipelining: answers must be
  // byte-compatible with untraced ones, and every request id resolves.
  std::vector<net::WireResult> untraced;
  for (const std::string& text : texts) {
    auto result = client.Query(text);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    untraced.push_back(std::move(*result));
  }
  const uint64_t trace_id = obs::NewTraceId();
  std::vector<uint64_t> ids;
  for (const std::string& text : texts) {
    auto id = client.SendQuery(text, 0, 0, trace_id, 1);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  // Collect in reverse order to exercise response parking.
  for (size_t i = ids.size(); i-- > 0;) {
    auto payload =
        client.WaitForResponse(ids[i], FrameType::kResult);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    net::WireResult result;
    ASSERT_TRUE(net::DecodeResult(*payload, &result).ok());
    EXPECT_EQ(result.result, untraced[i].result) << "query " << i;
  }
  // A traced BATCH rides the same connection.
  auto batch = client.QueryBatch(texts, 0, 0, trace_id, 1);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), texts.size());

  // METRICS: parses as Prometheus exposition and shows the load.
  auto metrics = client.Observe(net::ObserveKind::kMetrics);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("# TYPE gtpq_queries_total counter"),
            std::string::npos);
  EXPECT_NE(metrics->find("gtpq_batch_latency_us_bucket"),
            std::string::npos);
  EXPECT_NE(metrics->find("gtpq_connections_total"), std::string::npos);

  // TRACE: the dispatch/evaluate spans of our trace id are in the dump.
  auto trace = client.Observe(net::ObserveKind::kTrace);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(trace_id));
  EXPECT_NE(trace->find(hex), std::string::npos);
  EXPECT_NE(trace->find("\"name\":\"dispatch\""), std::string::npos);
  EXPECT_NE(trace->find("\"name\":\"evaluate\""), std::string::npos);

  // SLOWLOG: renders (the worst of this tiny load is still a query).
  auto slowlog = client.Observe(net::ObserveKind::kSlowlog);
  ASSERT_TRUE(slowlog.ok()) << slowlog.status().ToString();
  EXPECT_NE(slowlog->find("slow query log"), std::string::npos);

  // STATS now carries the per-stage timing aggregation.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->match_ms, 0.0);
  EXPECT_GE(stats->enumerate_ms, 0.0);

  // HEALTH: answered inline on the IO thread; a standalone leaf server
  // reports itself serving at epoch 0 with its engine name.
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->serving, 1);
  EXPECT_EQ(health->epoch, 0u);
  EXPECT_GE(health->uptime_seconds, 0.0);
  EXPECT_FALSE(health->engine.empty());

  // Binary METRICS_SNAPSHOT: decodes to the same series the text
  // exposition rendered, with full histogram buckets.
  auto snap_body = client.Observe(net::ObserveKind::kMetricsSnapshot);
  ASSERT_TRUE(snap_body.ok()) << snap_body.status().ToString();
  obs::MetricsSnapshot snapshot;
  ASSERT_TRUE(obs::DecodeMetricsSnapshot(*snap_body, &snapshot).ok());
  const auto counter_value = [&snapshot](const std::string& name) {
    for (const auto& [n, v] : snapshot.counters) {
      if (n == name) return v;
    }
    return uint64_t{0};
  };
  EXPECT_GE(counter_value("gtpq_queries_total"), texts.size());
  bool found_latency = false;
  for (const auto& [n, h] : snapshot.histograms) {
    if (n == "gtpq_query_latency_us") {
      found_latency = true;
      EXPECT_GE(h.TotalCount(), texts.size());
    }
  }
  EXPECT_TRUE(found_latency);

  // Binary SPANS with the trace-id filter: only our trace comes back.
  auto spans_body =
      client.Observe(net::ObserveKind::kSpans, trace_id);
  ASSERT_TRUE(spans_body.ok()) << spans_body.status().ToString();
  std::vector<obs::Span> spans;
  ASSERT_TRUE(obs::DecodeSpans(*spans_body, &spans).ok());
  ASSERT_FALSE(spans.empty());
  for (const obs::Span& span : spans) {
    EXPECT_EQ(span.trace_id, trace_id);
  }

  server.Stop();
}

#if defined(__linux__)

/// Minimal raw socket for protocol-violation tests the NetClient
/// cannot express (it always says HELLO first).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  /// Reads frames until one arrives, EOF, or an error.
  Result<Frame> ReadFrame() {
    while (true) {
      auto frame = decoder_.Next();
      if (!frame.ok()) return frame.status();
      if (frame->has_value()) return std::move(**frame);
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return Status::Internal("EOF");
      if (n < 0) return Status::Internal("recv failed");
      decoder_.Append(buf, static_cast<size_t>(n));
    }
  }
  /// True once the server closes its end.
  bool WaitForClose() {
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
      decoder_.Append(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameDecoder decoder_;
};

TEST(NetServerTest, ProtocolViolationsGetTypedErrorsThenClose) {
  DataGraph g = testing::SmallDag();
  net::NetServerOptions options;
  options.runtime.num_threads = 1;
  options.limits.max_frame_bytes = 4096;
  net::NetServer server(g, options);
  START_OR_SKIP(server);

  // QUERY before HELLO: typed error, connection stays open.
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    std::string bytes;
    net::EncodeFrame(FrameType::kQuery, 9,
                     net::EncodeQueryRequest({0, "backbone a root *\n"}),
                     &bytes);
    conn.Send(bytes);
    auto frame = conn.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, FrameType::kError);
    EXPECT_EQ(frame->request_id, 9u);
    EXPECT_EQ(net::DecodeError(frame->payload).code(),
              StatusCode::kFailedPrecondition);

    // The connection still answers a proper handshake afterwards.
    bytes.clear();
    net::EncodeFrame(FrameType::kHello, 10, net::EncodeHello(), &bytes);
    conn.Send(bytes);
    frame = conn.ReadFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->type, FrameType::kHelloOk);
  }

  // Response frame types from a client are a violation: error + close.
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    std::string bytes;
    net::EncodeFrame(FrameType::kResult, 3, "", &bytes);
    conn.Send(bytes);
    auto frame = conn.ReadFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->type, FrameType::kError);
    EXPECT_TRUE(conn.WaitForClose());
  }

  // Corrupt CRC: final error frame, then close.
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    std::string bytes;
    net::EncodeFrame(FrameType::kHello, 1, net::EncodeHello(), &bytes);
    bytes[bytes.size() - 1] ^= 0x11;
    conn.Send(bytes);
    auto frame = conn.ReadFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->type, FrameType::kError);
    EXPECT_TRUE(conn.WaitForClose());
  }

  // Oversized declared frame length: rejected without buffering.
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    storage::Writer w;
    w.WriteU32(1u << 24);  // past the 4 KiB server limit
    conn.Send(w.buffer());
    auto frame = conn.ReadFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->type, FrameType::kError);
    EXPECT_TRUE(conn.WaitForClose());
  }

  EXPECT_GE(server.counters().protocol_errors, 3u);
}

#endif  // defined(__linux__)

TEST(NetServerTest, AdmissionControlRejectsWithTypedErrors) {
  DataGraph g = RandomDag({.num_nodes = 40,
                           .avg_degree = 2.0,
                           .num_labels = 5,
                           .locality = 1.0,
                           .seed = 3});
  const std::vector<Gtpq> queries = MakeQueries(g, 2, 700);
  ASSERT_GE(queries.size(), 1u);
  const std::vector<std::string> texts = ToTexts(g, queries);

  // A long coalescing window holds responses back, so in-flight
  // requests pile up deterministically past the per-connection cap.
  net::NetServerOptions options;
  options.runtime.num_threads = 1;
  options.max_inflight_per_conn = 2;
  options.coalesce_max_queries = 64;
  options.coalesce_window_us = 200000;  // 200 ms
  net::NetServer server(g, options);
  START_OR_SKIP(server);

  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  constexpr size_t kSends = 8;
  for (size_t i = 0; i < kSends; ++i) {
    ASSERT_TRUE(client.SendQuery(texts[0]).ok());
  }
  size_t ok_count = 0, rejected = 0;
  for (size_t i = 0; i < kSends; ++i) {
    auto frame = client.Receive();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame->type == FrameType::kResult) {
      ++ok_count;
    } else {
      ASSERT_EQ(frame->type, FrameType::kError);
      EXPECT_EQ(net::DecodeError(frame->payload).code(),
                StatusCode::kFailedPrecondition);
      ++rejected;
    }
  }
  EXPECT_EQ(ok_count, 2u);
  EXPECT_EQ(rejected, kSends - 2);
  EXPECT_EQ(server.counters().rejected_overload, kSends - 2);

  // A zero-capacity global queue rejects everything typed, too.
  net::NetServerOptions zero = options;
  zero.coalesce_window_us = 100;
  zero.max_pending_requests = 0;
  net::NetServer full(g, zero);
  START_OR_SKIP(full);
  net::NetClient client2;
  ASSERT_TRUE(client2.Connect("127.0.0.1", full.port()).ok());
  auto result = client2.Query(texts[0]);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NetServerTest, EightPipelinedClientsMatchInProcessServer) {
  DataGraph g = RandomDag({.num_nodes = 70,
                           .avg_degree = 2.3,
                           .num_labels = 6,
                           .locality = 1.0,
                           .seed = 29});
  const std::vector<Gtpq> queries = MakeQueries(g, 8, 1500);
  ASSERT_GE(queries.size(), 4u) << "generator starved";
  const std::vector<std::string> texts = ToTexts(g, queries);

  net::NetServerOptions options;
  options.runtime.num_threads = 4;
  options.coalesce_max_queries = 16;
  options.coalesce_window_us = 2000;  // force visible grouping
  net::NetServer server(g, options);
  START_OR_SKIP(server);

  // Independent in-process reference (not the server's own runtime).
  QueryServer reference(g, {.num_threads = 2});
  const std::vector<QueryResult> expected =
      reference.EvaluateBatch(queries);

  constexpr size_t kClients = 8;
  constexpr size_t kRounds = 20;
  constexpr size_t kPipeline = 4;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (size_t c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      net::NetClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        ++failures;
        return;
      }
      size_t sent = 0, done = 0;
      const size_t total = kRounds * texts.size();
      std::unordered_map<uint64_t, size_t> pending;
      while (done < total) {
        while (sent < total && pending.size() < kPipeline) {
          const size_t index = (sent * (c + 1)) % texts.size();
          auto id = client.SendQuery(texts[index]);
          if (!id.ok()) {
            ++failures;
            return;
          }
          pending.emplace(*id, index);
          ++sent;
        }
        auto frame = client.Receive();
        if (!frame.ok() || frame->type != FrameType::kResult) {
          ++failures;
          return;
        }
        auto it = pending.find(frame->request_id);
        if (it == pending.end()) {
          ++failures;
          return;
        }
        net::WireResult result;
        if (!net::DecodeResult(frame->payload, &result).ok() ||
            result.result != expected[it->second]) {
          ++failures;
          return;
        }
        pending.erase(it);
        ++done;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.counters().queries_served,
            kClients * kRounds * texts.size());
  // Coalescing must have packed concurrent singles into shared
  // dispatches (strictly fewer EvaluateBatch calls than queries).
  EXPECT_LT(server.counters().batches_dispatched,
            server.counters().queries_served);
}

// While one wire client streams APPLY_UPDATES, readers pushing BATCH
// frames must always see the golden answers of exactly one epoch —
// never a mix. Mirrors the in-process SnapshotConsistencyTest at the
// wire layer; runs under TSan in CI.
TEST(NetServerTest, WireUpdatesAndQueriesSeeOneEpoch) {
  DataGraph g = RandomDag({.num_nodes = 50,
                           .avg_degree = 2.2,
                           .num_labels = 5,
                           .locality = 1.0,
                           .seed = 23});
  const std::vector<Gtpq> queries = MakeQueries(g, 6, 1200);
  ASSERT_GE(queries.size(), 3u) << "generator starved";
  const std::vector<std::string> texts = ToTexts(g, queries);
  UpdateStreamOptions so;
  so.rounds = 4;
  so.ops_per_round = 6;
  so.del_ratio = 0.4;
  so.seed = 61;
  const std::vector<UpdateBatch> stream = GenerateUpdateStream(g, so);

  // Golden per-epoch answers, computed sequentially up front.
  std::vector<std::vector<QueryResult>> expected;
  GraphDelta view(g.NumNodes());
  std::vector<DataGraph> epoch_graphs;
  {
    auto factory = SharedEngineFactory::Make("gtea", g);
    ASSERT_NE(factory, nullptr);
    auto engine = factory->Create();
    std::vector<QueryResult> epoch0;
    for (const Gtpq& q : queries) epoch0.push_back(engine->Evaluate(q));
    expected.push_back(std::move(epoch0));
  }
  for (const UpdateBatch& batch : stream) {
    ASSERT_TRUE(view.Apply(g.graph(), batch).ok());
    epoch_graphs.push_back(view.MaterializeDataGraph(g));
    auto factory = SharedEngineFactory::Make("gtea", epoch_graphs.back());
    ASSERT_NE(factory, nullptr);
    auto engine = factory->Create();
    std::vector<QueryResult> answers;
    for (const Gtpq& q : queries) answers.push_back(engine->Evaluate(q));
    expected.push_back(std::move(answers));
  }

  net::NetServerOptions options;
  options.runtime.num_threads = 4;
  net::NetServer server(g, options);
  START_OR_SKIP(server);

  std::atomic<int> failures{0};
  std::thread updater([&] {
    net::NetClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      ++failures;
      return;
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      auto applied =
          client.ApplyUpdates(std::span<const UpdateBatch>(&stream[i], 1));
      if (!applied.ok() || applied->epoch != i + 1) {
        ++failures;
        return;
      }
      // Let readers interleave between epochs.
      if (!client.QueryBatch({texts[0]}).ok()) ++failures;
    }
  });
  std::vector<std::thread> readers;
  for (int reader = 0; reader < 2; ++reader) {
    readers.emplace_back([&] {
      net::NetClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < 10; ++round) {
        auto batch = client.QueryBatch(texts);
        if (!batch.ok()) {
          ++failures;
          return;
        }
        if (batch->epoch > stream.size()) ++failures;
        const bool one_epoch =
            std::find(expected.begin(), expected.end(), batch->results) !=
            expected.end();
        if (!one_epoch) {
          ++failures;
          ADD_FAILURE() << "wire batch matches no single epoch (round "
                        << round << ")";
        }
        // The stamped epoch must agree with the answers it produced.
        if (one_epoch &&
            batch->results !=
                expected[static_cast<size_t>(batch->epoch)]) {
          ++failures;
          ADD_FAILURE() << "epoch stamp disagrees with the answers";
        }
      }
    });
  }
  updater.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiescent: the final epoch serves everywhere, wire and in-process.
  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(client.server_info().epoch, stream.size());
  auto final_batch = client.QueryBatch(texts);
  ASSERT_TRUE(final_batch.ok());
  EXPECT_EQ(final_batch->results, expected.back());
  // An empty BATCH is a pure epoch probe and must report the live
  // epoch, not a stale default.
  auto probe = client.QueryBatch({});
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->results.size(), 0u);
  EXPECT_EQ(probe->epoch, stream.size());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->updates_applied, stream.size());
  EXPECT_EQ(stats->epoch, stream.size());

  // Invalid updates are typed errors and change nothing.
  UpdateBatch bogus;
  bogus.remove_nodes.push_back(static_cast<NodeId>(g.NumNodes() + 500));
  auto rejected =
      client.ApplyUpdates(std::span<const UpdateBatch>(&bogus, 1));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(client.Stats()->epoch, stream.size());
}

#if defined(__linux__)

// ------------------------------------- interrupted & partial syscalls

std::atomic<int> g_sigusr1_count{0};
void CountSigusr1(int) {
  g_sigusr1_count.fetch_add(1, std::memory_order_relaxed);
}

// A client thread peppered with non-SA_RESTART signals must still get
// every answer: any read()/write()/connect() inside NetClient can
// return EINTR at any point, and a lost retry shows up here as a
// failed Connect, a short frame, or a CRC mismatch. Regression test
// for the client-side EINTR handling (connect completes via
// poll+SO_ERROR; IO loops resume mid-frame).
TEST(NetServerTest, SignalPepperedClientGetsEveryAnswer) {
  DataGraph g = RandomDag({.num_nodes = 60,
                           .avg_degree = 2.2,
                           .num_labels = 6,
                           .locality = 1.0,
                           .seed = 13});
  const std::vector<Gtpq> queries = MakeQueries(g, 4, 500);
  ASSERT_GE(queries.size(), 2u) << "generator starved";
  const std::vector<std::string> texts = ToTexts(g, queries);

  net::NetServerOptions options;
  options.runtime.num_threads = 2;
  net::NetServer server(g, options);
  START_OR_SKIP(server);
  const std::vector<QueryResult> expected =
      server.runtime().EvaluateBatch(queries);

  // SIGUSR1 without SA_RESTART: every blocking syscall in the peppered
  // thread can fail with EINTR instead of resuming transparently.
  g_sigusr1_count.store(0, std::memory_order_relaxed);
  struct sigaction action, previous;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &CountSigusr1;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread victim([&]() {
    // Fresh connection per round so ::connect() gets signal exposure
    // too, then a pipelined burst over it.
    for (int round = 0; round < 12; ++round) {
      net::NetClient client;
      const Status st = client.Connect("127.0.0.1", server.port());
      if (!st.ok()) {
        ++failures;
        ADD_FAILURE() << "connect: " << st.ToString();
        continue;
      }
      for (int rep = 0; rep < 4; ++rep) {
        auto batch = client.QueryBatch(texts);
        if (!batch.ok()) {
          ++failures;
          ADD_FAILURE() << "batch: " << batch.status().ToString();
          break;
        }
        if (batch->results != expected) {
          ++failures;
          ADD_FAILURE() << "round " << round << " answers diverged";
        }
      }
    }
    done.store(true, std::memory_order_release);
  });

  // Pepper until the victim finishes. pthread_kill on a joinable
  // thread is valid until join(), even after its body returns.
  while (!done.load(std::memory_order_acquire)) {
    pthread_kill(victim.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  victim.join();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(g_sigusr1_count.load(std::memory_order_relaxed), 50)
      << "pepper never landed; the test proved nothing";
  server.Stop();
}

// A slow reader with a tiny receive window forces the server's writes
// short: send() accepts partial frames (or 0 bytes / EAGAIN) and the
// remainder must survive in the output backlog until the socket
// drains. Regression test for the flush path treating a 0-byte write
// as backpressure, not as a vanished peer.
TEST(NetServerTest, SlowReaderWithTinyWindowGetsCompleteResponses) {
  DataGraph g = RandomDag({.num_nodes = 60,
                           .avg_degree = 2.2,
                           .num_labels = 6,
                           .locality = 1.0,
                           .seed = 17});
  const std::vector<Gtpq> queries = MakeQueries(g, 4, 700);
  ASSERT_GE(queries.size(), 2u) << "generator starved";
  std::vector<std::string> texts;
  for (int rep = 0; rep < 64; ++rep) {
    const auto batch = ToTexts(g, queries);
    texts.insert(texts.end(), batch.begin(), batch.end());
  }
  std::vector<Gtpq> all_queries;
  for (int rep = 0; rep < 64; ++rep) {
    for (const Gtpq& q : queries) all_queries.push_back(q);
  }

  net::NetServerOptions options;
  options.runtime.num_threads = 2;
  net::NetServer server(g, options);
  START_OR_SKIP(server);
  const std::vector<QueryResult> expected =
      server.runtime().EvaluateBatch(all_queries);

  // Raw socket with the smallest receive buffer the kernel will give
  // us, set before connect so the advertised window starts tiny.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 1024;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof(rcvbuf)),
            0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::string bytes;
  net::EncodeFrame(FrameType::kHello, 1, net::EncodeHello(), &bytes);
  net::EncodeFrame(FrameType::kBatch, 2,
                   net::EncodeBatchRequest({0, texts}), &bytes);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  // Let the server evaluate and slam into the tiny window before we
  // start draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Drain in 512-byte sips with pauses: the server flushes a little,
  // hits a short write, re-arms, flushes again.
  FrameDecoder decoder;
  std::optional<Frame> hello_ok, batch_result;
  char buf[512];
  int sips = 0;
  while (!batch_result.has_value()) {
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame->has_value()) {
      if ((*frame)->type == FrameType::kHelloOk) {
        hello_ok = std::move(**frame);
      } else {
        batch_result = std::move(**frame);
      }
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server hung up mid-response";
    decoder.Append(buf, static_cast<size_t>(n));
    if (++sips % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(hello_ok.has_value());
  ASSERT_EQ(batch_result->type, FrameType::kBatchResult);
  EXPECT_EQ(batch_result->request_id, 2u);
  net::WireBatchResult decoded;
  ASSERT_TRUE(
      net::DecodeBatchResult(batch_result->payload, &decoded).ok());
  EXPECT_EQ(decoded.results, expected);
  ::close(fd);
  server.Stop();
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace gtpq
