// ShardedOracle structural tests, focused on the rebuild-economics
// API: RebuildShard must fold intra-shard edge edits into exactly the
// touched shard (plus the overlay closure) and restore full
// conformance with a ground-truth closure of the edited graph.
// Point/set conformance of the decorator itself is covered by the
// spec-parameterized suite in reachability_conformance_test.cc.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "reachability/sharded_oracle.h"
#include "reachability/transitive_closure.h"

namespace gtpq {
namespace {

constexpr size_t kNodes = 20;  // 4 shards x 5 vertices

Digraph BuildGraph(const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Digraph g(kNodes);
  for (const auto& [a, b] : edges) g.AddEdge(a, b);
  g.Finalize();
  return g;
}

// Base edge list: intra-shard chains in every shard plus fixed
// cross-shard edges (which RebuildShard requires to stay unchanged).
std::vector<std::pair<NodeId, NodeId>> BaseEdges() {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId s = 0; s < 4; ++s) {
    const NodeId base = s * 5;
    edges.push_back({base, base + 1});
    edges.push_back({base + 1, base + 2});
    edges.push_back({base + 3, base + 4});
  }
  // Cross edges plus the intra edge 4 -> 0, which closes a cycle
  // threading shards 0 and 3: 0 -> 1 -> 2 -> 15 -> 16 -> 4 -> 0.
  edges.push_back({4, 7});
  edges.push_back({9, 12});
  edges.push_back({14, 17});
  edges.push_back({2, 15});
  edges.push_back({16, 4});
  edges.push_back({4, 0});
  return edges;
}

void ExpectMatchesClosure(const ShardedOracle& oracle, const Digraph& g) {
  auto tc = TransitiveClosure::Build(g);
  for (NodeId a = 0; a < kNodes; ++a) {
    for (NodeId b = 0; b < kNodes; ++b) {
      ASSERT_EQ(oracle.Reaches(a, b), tc.Reaches(a, b))
          << "(" << a << ", " << b << ")";
    }
  }
}

ShardedOracleOptions FourShards() {
  ShardedOracleOptions options;
  options.num_shards = 4;
  options.inner_spec = "interval";
  return options;
}

TEST(ShardedOracleTest, StructureAndBaseConformance) {
  Digraph g = BuildGraph(BaseEdges());
  ShardedOracle oracle(g, FourShards());
  EXPECT_EQ(oracle.name(), "sharded:interval");
  EXPECT_EQ(oracle.NumShards(), 4u);
  for (size_t s = 0; s < 4; ++s) EXPECT_EQ(oracle.ShardSize(s), 5u);
  for (NodeId v = 0; v < kNodes; ++v) EXPECT_EQ(oracle.ShardOf(v), v / 5);
  EXPECT_GT(oracle.NumBoundaryVertices(), 0u);
  ExpectMatchesClosure(oracle, g);
}

TEST(ShardedOracleTest, RebuildShardIsNoOpOnSameGraph) {
  Digraph g = BuildGraph(BaseEdges());
  ShardedOracle oracle(g, FourShards());
  for (size_t s = 0; s < oracle.NumShards(); ++s) {
    oracle.RebuildShard(g, s);
    ExpectMatchesClosure(oracle, g);
  }
}

TEST(ShardedOracleTest, RebuildShardTracksIntraShardEdits) {
  const auto base = BaseEdges();
  Digraph g1 = BuildGraph(base);
  ShardedOracle oracle(g1, FourShards());
  ExpectMatchesClosure(oracle, g1);

  // Edit shard 0 only: connect its two chain fragments (2 -> 3) and
  // add a shortcut (0 -> 4). Cross-shard edges are untouched, so the
  // boundary set is stable — the RebuildShard contract.
  auto edited = base;
  edited.push_back({2, 3});
  edited.push_back({0, 4});
  Digraph g2 = BuildGraph(edited);
  oracle.RebuildShard(g2, 0);
  ExpectMatchesClosure(oracle, g2);

  // Remove one of the edits again (drop 2 -> 3): rebuilding the same
  // shard must also forget reachability, not just add it — stale
  // overlay rows from the previous rebuild would show up here.
  auto shrunk = base;
  shrunk.push_back({0, 4});
  Digraph g3 = BuildGraph(shrunk);
  oracle.RebuildShard(g3, 0);
  ExpectMatchesClosure(oracle, g3);
}

TEST(ShardedOracleTest, RebuildShardTracksEditsInTwoShards) {
  const auto base = BaseEdges();
  Digraph g1 = BuildGraph(base);
  ShardedOracle oracle(g1, FourShards());

  // Intra edits in shards 1 and 3; rebuild exactly those two.
  auto edited = base;
  edited.push_back({7, 8});    // shard 1
  edited.push_back({15, 19});  // shard 3
  Digraph g2 = BuildGraph(edited);
  oracle.RebuildShard(g2, 1);
  oracle.RebuildShard(g2, 3);
  ExpectMatchesClosure(oracle, g2);
}

}  // namespace
}  // namespace gtpq
