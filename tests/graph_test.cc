#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace gtpq {
namespace {

using testing::MakeGraph;
using testing::SmallDag;

TEST(DigraphTest, BasicConstruction) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  g.AddEdge(0, 1);  // duplicate merged
  g.Finalize();
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(3), 1u);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(2, 0));
  auto in1 = g.InNeighbors(1);
  ASSERT_EQ(in1.size(), 1u);
  EXPECT_EQ(in1[0], 0u);
}

TEST(DigraphTest, Reversed) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.Finalize();
  Digraph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 1));
  EXPECT_FALSE(r.HasEdge(0, 1));
}

TEST(AlgorithmsTest, TopologicalSort) {
  DataGraph g = SmallDag();
  auto order = TopologicalSort(g.graph());
  ASSERT_EQ(order.size(), g.NumNodes());
  std::vector<size_t> pos(g.NumNodes());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      EXPECT_LT(pos[v], pos[w]);
    }
  }
}

TEST(AlgorithmsTest, CycleDetection) {
  DataGraph g = MakeGraph(3, {0, 0, 0}, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_TRUE(TopologicalSort(g.graph()).empty());
  EXPECT_FALSE(IsDag(g.graph()));
  EXPECT_TRUE(IsDag(SmallDag().graph()));
}

TEST(AlgorithmsTest, SccOnMixedGraph) {
  // Two 2-cycles and two singletons: {1,2}, {4,5}, {0}, {3}.
  DataGraph g = MakeGraph(
      6, {0, 0, 0, 0, 0, 0},
      {{0, 1}, {1, 2}, {2, 1}, {2, 3}, {3, 4}, {4, 5}, {5, 4}});
  auto scc = ComputeScc(g.graph());
  EXPECT_EQ(scc.num_components, 4u);
  EXPECT_EQ(scc.component_of[1], scc.component_of[2]);
  EXPECT_EQ(scc.component_of[4], scc.component_of[5]);
  EXPECT_NE(scc.component_of[0], scc.component_of[1]);
  EXPECT_TRUE(scc.cyclic[scc.component_of[1]]);
  EXPECT_FALSE(scc.cyclic[scc.component_of[0]]);
  EXPECT_FALSE(scc.cyclic[scc.component_of[3]]);

  Digraph cond = BuildCondensation(g.graph(), scc);
  EXPECT_EQ(cond.NumNodes(), 4u);
  EXPECT_TRUE(IsDag(cond));
}

TEST(AlgorithmsTest, SccSelfLoop) {
  DataGraph g = MakeGraph(2, {0, 0}, {{0, 0}, {0, 1}});
  auto scc = ComputeScc(g.graph());
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_TRUE(scc.cyclic[scc.component_of[0]]);
  EXPECT_FALSE(scc.cyclic[scc.component_of[1]]);
}

TEST(AlgorithmsTest, ReachableFrom) {
  DataGraph g = SmallDag();
  auto reach = ReachableFrom(g.graph(), 1);
  EXPECT_EQ(reach, (std::vector<NodeId>{3, 4, 6, 7, 9}));
}

TEST(AlgorithmsTest, SccTarjanDeepRecursionSafe) {
  // A long path would blow the stack with a recursive Tarjan.
  const size_t n = 200000;
  Digraph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  g.Finalize();
  auto scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, n);
}

TEST(GeneratorsTest, RandomDagIsDag) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RandomDagOptions o;
    o.num_nodes = 300;
    o.avg_degree = 3.0;
    o.seed = seed;
    DataGraph g = RandomDag(o);
    EXPECT_TRUE(IsDag(g.graph()));
    EXPECT_GT(g.NumEdges(), 0u);
  }
}

TEST(GeneratorsTest, TreeWithCrossEdgesHasSpanningTree) {
  RandomTreeOptions o;
  o.num_nodes = 200;
  o.seed = 3;
  DataGraph g = RandomTreeWithCrossEdges(o);
  EXPECT_TRUE(g.HasSpanningTree());
  EXPECT_TRUE(IsDag(g.graph()));
  size_t tree_edges = 0;
  for (NodeId v = 1; v < g.NumNodes(); ++v) {
    NodeId p = g.TreeParentOf(v);
    ASSERT_NE(p, kInvalidNode);
    EXPECT_TRUE(g.HasEdge(p, v));
    ++tree_edges;
  }
  EXPECT_EQ(tree_edges, g.NumNodes() - 1);
}

TEST(AttributesTest, TupleAndPredicateBasics) {
  DataGraph g(2);
  g.SetLabel(0, 5);
  g.SetAttr(0, "year", AttrValue(int64_t{2005}));
  g.SetAttr(0, "name", AttrValue("alice"));
  g.Finalize();
  AttrId year = g.attr_names()->Intern("year");
  AttrId name = g.attr_names()->Intern("name");
  ASSERT_NE(g.GetAttr(0, year), nullptr);
  EXPECT_EQ(g.GetAttr(0, year)->as_int(), 2005);
  EXPECT_EQ(g.GetAttr(0, name)->as_string(), "alice");
  EXPECT_EQ(g.GetAttr(1, year), nullptr);
  EXPECT_EQ(g.GetAttr(0, g.label_attr())->as_int(), 5);
}

TEST(AttributesTest, ValueComparisons) {
  EXPECT_TRUE(AttrValue(int64_t{3}) < AttrValue(int64_t{5}));
  EXPECT_TRUE(AttrValue(3.5) > AttrValue(int64_t{3}));
  EXPECT_TRUE(AttrValue(int64_t{3}) == AttrValue(3.0));
  EXPECT_TRUE(AttrValue("abc") < AttrValue("abd"));
  // Numbers sort before strings.
  EXPECT_TRUE(AttrValue(int64_t{99}) < AttrValue("1"));
}

TEST(GraphIoTest, RoundTrip) {
  DataGraph g = SmallDag();
  g.SetAttr(3, "year", AttrValue(int64_t{2001}));
  g.SetAttr(4, "name", AttrValue("bob"));
  g.Finalize();
  std::ostringstream out;
  ASSERT_TRUE(SaveDataGraph(g, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadDataGraph(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(loaded->LabelOf(v), g.LabelOf(v));
  }
  AttrId year = loaded->attr_names()->Lookup("year");
  ASSERT_NE(year, -1);
  ASSERT_NE(loaded->GetAttr(3, year), nullptr);
  EXPECT_EQ(loaded->GetAttr(3, year)->as_int(), 2001);
}

TEST(GraphIoTest, RejectsMalformedInput) {
  {
    std::istringstream in("bogus header\n");
    EXPECT_FALSE(LoadDataGraph(&in).ok());
  }
  {
    std::istringstream in("gtpq-graph v1\nnodes 2\nedge 0 7\n");
    EXPECT_FALSE(LoadDataGraph(&in).ok());
  }
  {
    std::istringstream in("gtpq-graph v1\nnodes 2\nfrobnicate\n");
    EXPECT_FALSE(LoadDataGraph(&in).ok());
  }
}

}  // namespace
}  // namespace gtpq
